#pragma once
// Workload parameterizations of the analytical PN-TM performance model.
//
// The paper's evaluation (§VII-A) uses 10 workloads: TPC-C and STAMP
// Vacation at low/medium/high contention, plus four Array microbenchmark
// variants updating 0%, 0.01%, 50% and 90% of a shared array. The presets
// below instantiate the surface model so that the facts the paper reports
// about its (unpublished) measured surfaces hold — see DESIGN.md §3 for the
// calibration targets and EXPERIMENTS.md for the achieved values.

#include <string>
#include <vector>

namespace autopn::sim {

/// Parameters of the analytical throughput model for one workload.
struct WorkloadParams {
  std::string name;

  /// Service time (seconds) of one top-level transaction body executed
  /// sequentially with nesting disabled, i.e. at configuration (1,1).
  double base_work = 1e-3;

  /// Fraction of base_work that nested children can execute in parallel.
  double parallel_fraction = 0.5;

  /// Sub-linearity of child speedup: the parallel part takes
  /// parallel_fraction * base_work / c^gamma (gamma <= 1 models imbalance).
  double child_speedup_exponent = 0.9;

  /// Per-child activation overhead (seconds) — the cost of spawning and
  /// synchronizing one nested transaction.
  double spawn_overhead = 0.0;

  /// Fixed fork/join overhead per child batch (seconds).
  double batch_overhead = 0.0;

  /// Top-level contention coefficient: abort probability of a top-level
  /// attempt is 1 - exp(-top_conflict * (t-1) * duration_fraction), where
  /// duration_fraction is the attempt duration relative to base_work.
  double top_conflict = 0.0;

  /// Sibling contention coefficient (same shape, among the c-1 siblings).
  double sibling_conflict = 0.0;

  /// Hardware-resource saturation: attempt duration is inflated by
  /// (1 + saturation * used_cores / n), modelling shared cache/memory
  /// bandwidth pressure as utilization grows.
  double saturation = 0.0;

  /// Contention floor, in "winners per attempt round": even under near-total
  /// conflict a TM commits at least ~1 winner per round (slightly more when
  /// write sets only partially overlap), so throughput never falls below
  /// min(t, contention_floor) / single_attempt_duration. Models the
  /// serialized-winners regime that keeps heavily contended configurations
  /// within a small factor of sequential performance instead of starving.
  double contention_floor = 1.2;

  /// Relative measurement noise of a single committed-transaction sample;
  /// the CV of a window measurement decays with the window's commit count.
  double measurement_cv = 0.15;

  /// Warm-up transient after a reconfiguration (seconds of virtual time
  /// during which the commit rate ramps from half to full speed).
  double warmup_seconds = 0.05;
};

/// The 10 evaluation workloads (paper §VII-A).
[[nodiscard]] std::vector<WorkloadParams> paper_workloads();

/// Looks a preset up by name (throws std::invalid_argument when unknown).
[[nodiscard]] WorkloadParams workload_by_name(const std::string& name);

}  // namespace autopn::sim
