#pragma once
// netload — the wire-side load generator: what src/serve/loadgen is to the
// in-process engine, this is to a NetServer across real sockets. It reuses
// the same arrival processes (serve::PoissonArrivals for the open loop,
// exponential think times for the closed loop) so in-process and loopback
// runs are directly comparable, which is exactly what bench/net_serve needs
// to quantify protocol overhead.
//
//  * Open loop: `connections` sender/receiver thread pairs, each pacing an
//    independent Poisson stream at rate/connections — requests are sent
//    without waiting for responses (pipelined on the connection), responses
//    are matched to send timestamps for client-observed latency.
//  * Closed loop: one synchronous client per connection — send, wait for
//    that response, honor a shed response's retry-after hint, think, repeat.
//
// Chaos-friendly: a connection that dies (injected net.* faults, server
// restart) is counted and — when `reconnect` is set — re-established, so a
// soak can keep offering load through connection churn.

#include <cstdint>
#include <string>

#include "serve/latency.hpp"

namespace autopn::net {

struct NetLoadParams {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t connections = 4;
  bool closed_loop = false;
  double rate = 500.0;        ///< open loop: aggregate arrivals/s (Poisson)
  double think_time = 0.001;  ///< closed loop: mean think seconds (exp)
  double duration = 1.0;      ///< seconds of generation
  std::uint16_t handler_id = 0;
  /// Requests round-robin tenant ids 0..tenants-1 (per-tenant SLO columns).
  std::uint16_t tenants = 1;
  std::size_t payload_bytes = 0;   ///< opaque padding per request
  std::uint64_t deadline_us = 0;   ///< client deadline carried on the wire
  std::uint64_t seed = 1;
  bool reconnect = true;  ///< re-dial a dead connection and keep going
  /// Seconds to wait for straggler responses after generation stops.
  double drain_grace = 2.0;
};

struct NetLoadResult {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;         ///< kShed + kClosing responses (all tiers)
  std::uint64_t shed_router = 0;  ///< subset of `shed` with router origin
  /// Subsets of `shed_router` split by the minor-2 shed-detail byte: sheds
  /// for a shard the router declared dead (placement should converge away)
  /// versus transient blips (mid-flight disconnect, drain, hold overflow).
  std::uint64_t shed_router_dead = 0;
  std::uint64_t shed_router_transient = 0;
  std::uint64_t expired = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t io_errors = 0;   ///< failed sends / broken connections
  std::uint64_t reconnects = 0;
  /// Sent but unanswered when the run (incl. drain_grace) ended — mid-request
  /// disconnects land here, matching the server's responses_dropped.
  std::uint64_t unanswered = 0;
  double duration = 0.0;
  /// Client-observed send→response latency of ok responses.
  serve::LatencyRecorder::Summary latency;
  double mean_retry_after = 0.0;  ///< over shed responses, seconds

  [[nodiscard]] std::uint64_t answered() const {
    return ok + shed + expired + failed + rejected;
  }
};

/// Runs the configured load against host:port; blocks for duration (plus
/// drain grace). Throws only when the very first connection cannot be
/// established (nothing to measure) — mid-run failures are counted.
[[nodiscard]] NetLoadResult run_netload(const NetLoadParams& params);

}  // namespace autopn::net
