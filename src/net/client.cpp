#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace autopn::net {

namespace {

using SteadyClock = std::chrono::steady_clock;

template <typename TimePoint>
double seconds_until(TimePoint deadline) {
  return std::chrono::duration<double>(deadline - SteadyClock::now()).count();
}

/// Blocking full-buffer send; false on any I/O error.
bool send_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

Client Client::connect(const std::string& host, std::uint16_t port,
                       double timeout_seconds) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw std::system_error{errno, std::generic_category(), "socket"};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::system_error{EINVAL, std::generic_category(), "inet_pton"};
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int saved = errno;
    ::close(fd);
    throw std::system_error{saved, std::generic_category(), "connect"};
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  Client client;
  client.fd_ = fd;

  std::vector<std::uint8_t> hello;
  encode_hello(hello);
  if (!send_all(fd, hello.data(), hello.size())) {
    client.close();
    throw std::runtime_error{"handshake send failed"};
  }
  // Wait for the HelloAck before handing the client out: a version-
  // mismatched server answers ok=false and the caller learns immediately.
  const auto deadline =
      SteadyClock::now() + std::chrono::duration<double>(timeout_seconds);
  while (!client.handshaken_) {
    if (!client.fill_buffer(seconds_until(deadline))) {
      client.close();
      throw std::runtime_error{"handshake: no HelloAck"};
    }
  }
  return client;
}

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_id_(other.next_id_.load(std::memory_order_relaxed)),
      closed_(other.closed_.load(std::memory_order_relaxed)),
      handshaken_(other.handshaken_),
      decoder_(std::move(other.decoder_)),
      pending_(std::move(other.pending_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    next_id_.store(other.next_id_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    closed_.store(other.closed_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    handshaken_ = other.handshaken_;
    decoder_ = std::move(other.decoder_);
    pending_ = std::move(other.pending_);
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  closed_.store(true, std::memory_order_relaxed);
}

std::optional<std::uint64_t> Client::send(
    std::uint16_t handler_id, std::uint16_t tenant_id, std::uint64_t deadline_us,
    const std::vector<std::uint8_t>& payload) {
  if (!connected()) return std::nullopt;
  RequestFrame frame;
  frame.request_id = next_id_.fetch_add(1, std::memory_order_relaxed);
  frame.handler_id = handler_id;
  frame.tenant_id = tenant_id;
  frame.deadline_us = deadline_us;
  frame.payload = payload;
  std::vector<std::uint8_t> bytes;
  encode_request(bytes, frame);
  if (!send_all(fd_, bytes.data(), bytes.size())) {
    closed_.store(true, std::memory_order_relaxed);
    return std::nullopt;
  }
  return frame.request_id;
}

bool Client::fill_buffer(double timeout_seconds) {
  const auto deadline =
      SteadyClock::now() +
      std::chrono::duration<double>(std::max(timeout_seconds, 0.0));
  while (pending_.empty()) {
    if (closed_.load(std::memory_order_relaxed) || fd_ < 0) return false;
    const double remaining = seconds_until(deadline);
    if (remaining <= 0.0) return false;
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, static_cast<int>(remaining * 1e3) + 1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      closed_.store(true, std::memory_order_relaxed);
      return false;
    }
    if (rc == 0) return false;  // timeout
    std::array<std::uint8_t, 16384> buf;
    const ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      closed_.store(true, std::memory_order_relaxed);
      return false;
    }
    decoder_.feed(buf.data(), static_cast<std::size_t>(n));
    while (auto frame = decoder_.next()) {
      if (frame->type == FrameType::kHelloAck) {
        const auto ack = parse_hello_ack(frame->body);
        if (!ack || !ack->ok) {
          closed_.store(true, std::memory_order_relaxed);
          return false;
        }
        handshaken_ = true;
        continue;  // handshake complete; keep draining data frames
      }
      if (frame->type != FrameType::kResponse) {
        closed_.store(true, std::memory_order_relaxed);
        return false;
      }
      auto response = parse_response(frame->body);
      if (!response) {
        closed_.store(true, std::memory_order_relaxed);
        return false;
      }
      pending_.push_back(std::move(*response));
    }
    if (decoder_.failed()) {
      closed_.store(true, std::memory_order_relaxed);
      return false;
    }
    // The HelloAck alone leaves pending_ empty: report success so the
    // handshake path can distinguish "ack received" from "timed out".
    return true;
  }
  return true;
}

std::optional<ResponseFrame> Client::recv(double timeout_seconds) {
  const auto deadline =
      SteadyClock::now() +
      std::chrono::duration<double>(std::max(timeout_seconds, 0.0));
  while (pending_.empty()) {
    if (!fill_buffer(seconds_until(deadline))) {
      if (pending_.empty()) return std::nullopt;
      break;
    }
  }
  if (pending_.empty()) return std::nullopt;
  ResponseFrame response = std::move(pending_.front());
  pending_.pop_front();
  return response;
}

std::optional<ResponseFrame> Client::call(std::uint16_t handler_id,
                                          std::uint16_t tenant_id,
                                          std::uint64_t deadline_us,
                                          double timeout_seconds) {
  const auto id = send(handler_id, tenant_id, deadline_us);
  if (!id) return std::nullopt;
  const auto deadline =
      SteadyClock::now() + std::chrono::duration<double>(timeout_seconds);
  for (;;) {
    // Scan the reorder buffer for our id first.
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (it->request_id == *id) {
        ResponseFrame response = std::move(*it);
        pending_.erase(it);
        return response;
      }
    }
    const double remaining = seconds_until(deadline);
    if (remaining <= 0.0 || closed_.load(std::memory_order_relaxed)) {
      return std::nullopt;
    }
    if (!fill_buffer(remaining) &&
        closed_.load(std::memory_order_relaxed)) {
      return std::nullopt;
    }
  }
}

}  // namespace autopn::net
