#include "net/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <thread>
#include <utility>

namespace autopn::net {

namespace {

using SteadyClock = std::chrono::steady_clock;

template <typename TimePoint>
double seconds_until(TimePoint deadline) {
  return std::chrono::duration<double>(deadline - SteadyClock::now()).count();
}

/// Bounded-time TCP connect: non-blocking connect + poll(POLLOUT), then
/// SO_ERROR tells whether the three-way handshake actually succeeded. On
/// success the fd is switched back to blocking mode. Throws on failure.
void connect_with_timeout(int fd, const sockaddr_in& addr,
                          double timeout_seconds) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw std::system_error{errno, std::generic_category(), "fcntl"};
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    if (errno != EINPROGRESS) {
      throw std::system_error{errno, std::generic_category(), "connect"};
    }
    const auto deadline =
        SteadyClock::now() + std::chrono::duration<double>(timeout_seconds);
    for (;;) {
      const double remaining = seconds_until(deadline);
      if (remaining <= 0.0) {
        throw std::system_error{ETIMEDOUT, std::generic_category(), "connect"};
      }
      pollfd pfd{fd, POLLOUT, 0};
      const int rc = ::poll(&pfd, 1, static_cast<int>(remaining * 1e3) + 1);
      if (rc < 0) {
        if (errno == EINTR) continue;
        throw std::system_error{errno, std::generic_category(), "poll"};
      }
      if (rc > 0) break;
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      throw std::system_error{errno, std::generic_category(), "getsockopt"};
    }
    if (err != 0) {
      throw std::system_error{err, std::generic_category(), "connect"};
    }
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) {
    throw std::system_error{errno, std::generic_category(), "fcntl"};
  }
}

/// Blocking full-buffer send; false on any I/O error.
bool send_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

Client Client::connect(const std::string& host, std::uint16_t port,
                       double timeout_seconds) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw std::system_error{errno, std::generic_category(), "socket"};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::system_error{EINVAL, std::generic_category(), "inet_pton"};
  }
  try {
    connect_with_timeout(fd, addr, timeout_seconds);
  } catch (...) {
    ::close(fd);
    throw;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  Client client;
  client.fd_ = fd;

  std::vector<std::uint8_t> hello;
  encode_hello(hello);
  if (!send_all(fd, hello.data(), hello.size())) {
    client.close();
    throw std::runtime_error{"handshake send failed"};
  }
  // Wait for the HelloAck before handing the client out: a version-
  // mismatched server answers ok=false and the caller learns immediately.
  const auto deadline =
      SteadyClock::now() + std::chrono::duration<double>(timeout_seconds);
  while (!client.handshaken_) {
    if (!client.read_batch(seconds_until(deadline))) {
      client.close();
      throw std::runtime_error{"handshake: no HelloAck"};
    }
  }
  return client;
}

std::optional<Client> Client::connect_with_backoff(const std::string& host,
                                                   std::uint16_t port,
                                                   const BackoffPolicy& policy) {
  double backoff = policy.initial_backoff_seconds;
  for (int attempt = 0; attempt < std::max(policy.max_attempts, 1); ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff = std::min(backoff * 2.0, policy.max_backoff_seconds);
    }
    try {
      return Client::connect(host, port, policy.attempt_timeout_seconds);
    } catch (const std::exception&) {
      // establishment failure — fall through to the next attempt
    }
  }
  return std::nullopt;
}

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_id_(other.next_id_.load(std::memory_order_relaxed)),
      closed_(other.closed_.load(std::memory_order_relaxed)),
      handshaken_(other.handshaken_),
      wire_minor_(other.wire_minor_),
      decoder_(std::move(other.decoder_)),
      pending_(std::move(other.pending_)),
      pending_stats_(std::move(other.pending_stats_)),
      pending_membership_(std::move(other.pending_membership_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    next_id_.store(other.next_id_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    closed_.store(other.closed_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    handshaken_ = other.handshaken_;
    wire_minor_ = other.wire_minor_;
    decoder_ = std::move(other.decoder_);
    pending_ = std::move(other.pending_);
    pending_stats_ = std::move(other.pending_stats_);
    pending_membership_ = std::move(other.pending_membership_);
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  closed_.store(true, std::memory_order_relaxed);
}

void Client::shutdown_socket() {
  closed_.store(true, std::memory_order_relaxed);
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

std::optional<std::uint64_t> Client::send(
    std::uint16_t handler_id, std::uint16_t tenant_id, std::uint64_t deadline_us,
    const std::vector<std::uint8_t>& payload) {
  if (!connected()) return std::nullopt;
  RequestFrame frame;
  frame.request_id = next_id_.fetch_add(1, std::memory_order_relaxed);
  frame.handler_id = handler_id;
  frame.tenant_id = tenant_id;
  frame.deadline_us = deadline_us;
  frame.payload = payload;
  std::vector<std::uint8_t> bytes;
  encode_request(bytes, frame);
  if (!send_all(fd_, bytes.data(), bytes.size())) {
    closed_.store(true, std::memory_order_relaxed);
    return std::nullopt;
  }
  return frame.request_id;
}

bool Client::fill_buffer(double timeout_seconds) {
  const auto deadline =
      SteadyClock::now() +
      std::chrono::duration<double>(std::max(timeout_seconds, 0.0));
  while (pending_.empty()) {
    if (!read_batch(seconds_until(deadline))) return false;
  }
  return true;
}

bool Client::read_batch(double timeout_seconds) {
  const auto deadline =
      SteadyClock::now() +
      std::chrono::duration<double>(std::max(timeout_seconds, 0.0));
  for (;;) {
    if (closed_.load(std::memory_order_relaxed) || fd_ < 0) return false;
    const double remaining = seconds_until(deadline);
    if (remaining <= 0.0) return false;
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, static_cast<int>(remaining * 1e3) + 1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      closed_.store(true, std::memory_order_relaxed);
      return false;
    }
    if (rc == 0) return false;  // timeout
    std::array<std::uint8_t, 16384> buf;
    const ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      closed_.store(true, std::memory_order_relaxed);
      return false;
    }
    decoder_.feed(buf.data(), static_cast<std::size_t>(n));
    while (auto frame = decoder_.next()) {
      if (frame->type == FrameType::kHelloAck) {
        const auto ack = parse_hello_ack(frame->body);
        if (!ack || !ack->ok) {
          closed_.store(true, std::memory_order_relaxed);
          return false;
        }
        handshaken_ = true;
        wire_minor_ = std::min(ack->minor, kWireMinor);
        continue;  // handshake complete; keep draining data frames
      }
      if (frame->type == FrameType::kStatsResponse) {
        auto stats = parse_stats(frame->body);
        if (!stats) {
          closed_.store(true, std::memory_order_relaxed);
          return false;
        }
        pending_stats_.push_back(std::move(*stats));
        continue;
      }
      if (frame->type == FrameType::kMembershipResponse) {
        auto membership = parse_membership(frame->body);
        if (!membership) {
          closed_.store(true, std::memory_order_relaxed);
          return false;
        }
        pending_membership_.push_back(std::move(*membership));
        continue;
      }
      if (frame->type != FrameType::kResponse) {
        closed_.store(true, std::memory_order_relaxed);
        return false;
      }
      auto response = parse_response(frame->body);
      if (!response) {
        closed_.store(true, std::memory_order_relaxed);
        return false;
      }
      pending_.push_back(std::move(*response));
    }
    if (decoder_.failed()) {
      closed_.store(true, std::memory_order_relaxed);
      return false;
    }
    // One successful read batch processed (possibly only a HelloAck or a
    // StatsFrame): report success so each caller can re-check its own
    // wait condition — handshaken_, pending_, or pending_stats_.
    return true;
  }
}

std::optional<ResponseFrame> Client::recv(double timeout_seconds) {
  const auto deadline =
      SteadyClock::now() +
      std::chrono::duration<double>(std::max(timeout_seconds, 0.0));
  while (pending_.empty()) {
    if (!fill_buffer(seconds_until(deadline))) {
      if (pending_.empty()) return std::nullopt;
      break;
    }
  }
  if (pending_.empty()) return std::nullopt;
  ResponseFrame response = std::move(pending_.front());
  pending_.pop_front();
  return response;
}

bool Client::send_stats_request() {
  if (!connected() || wire_minor_ < 1) return false;
  std::vector<std::uint8_t> bytes;
  encode_stats_request(bytes);
  if (!send_all(fd_, bytes.data(), bytes.size())) {
    closed_.store(true, std::memory_order_relaxed);
    return false;
  }
  return true;
}

std::optional<StatsFrame> Client::poll_stats(double timeout_seconds) {
  const auto deadline =
      SteadyClock::now() +
      std::chrono::duration<double>(std::max(timeout_seconds, 0.0));
  while (pending_stats_.empty()) {
    // Response frames seen while waiting stay buffered for recv()/call().
    if (!read_batch(seconds_until(deadline))) return std::nullopt;
  }
  StatsFrame stats = std::move(pending_stats_.front());
  pending_stats_.pop_front();
  return stats;
}

bool Client::send_membership(const MembershipRequest& request) {
  if (!connected() || wire_minor_ < 2) return false;
  std::vector<std::uint8_t> bytes;
  encode_membership_request(bytes, request);
  if (!send_all(fd_, bytes.data(), bytes.size())) {
    closed_.store(true, std::memory_order_relaxed);
    return false;
  }
  return true;
}

std::optional<MembershipFrame> Client::poll_membership(double timeout_seconds) {
  const auto deadline =
      SteadyClock::now() +
      std::chrono::duration<double>(std::max(timeout_seconds, 0.0));
  while (pending_membership_.empty()) {
    // Response/stats frames seen while waiting stay buffered for later.
    if (!read_batch(seconds_until(deadline))) return std::nullopt;
  }
  MembershipFrame membership = std::move(pending_membership_.front());
  pending_membership_.pop_front();
  return membership;
}

std::optional<ResponseFrame> Client::call(std::uint16_t handler_id,
                                          std::uint16_t tenant_id,
                                          std::uint64_t deadline_us,
                                          double timeout_seconds) {
  const auto id = send(handler_id, tenant_id, deadline_us);
  if (!id) return std::nullopt;
  const auto deadline =
      SteadyClock::now() + std::chrono::duration<double>(timeout_seconds);
  for (;;) {
    // Scan the reorder buffer for our id first.
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (it->request_id == *id) {
        ResponseFrame response = std::move(*it);
        pending_.erase(it);
        return response;
      }
    }
    const double remaining = seconds_until(deadline);
    if (remaining <= 0.0 || closed_.load(std::memory_order_relaxed)) {
      return std::nullopt;
    }
    if (!fill_buffer(remaining) &&
        closed_.load(std::memory_order_relaxed)) {
      return std::nullopt;
    }
  }
}

}  // namespace autopn::net
