#pragma once
// EventLoop — the single-threaded epoll reactor under the network front-end.
// One loop instance owns an epoll set plus two kernel primitives that make
// it complete without polling:
//
//   * an eventfd wakeup — post() enqueues a closure from any thread, writes
//     the eventfd, and the loop executes it on its own thread (this is the
//     only cross-thread door; fd registration and I/O callbacks are loop-
//     thread affairs);
//   * a timerfd — add_timer() schedules one-shot callbacks on a min-heap,
//     and the timerfd is re-armed to the earliest deadline so epoll_wait
//     never needs a guessed timeout.
//
// Level-triggered epoll throughout: a readable fd whose handler only drains
// part of the data gets re-reported, which keeps the Connection code free of
// "must read until EAGAIN" subtleties and makes backpressure (deliberately
// not reading) a plain matter of dropping EPOLLIN from the interest set.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/thread_annotations.hpp"

namespace autopn::net {

class EventLoop {
 public:
  /// Receives the ready-event mask (EPOLLIN/EPOLLOUT/EPOLLERR/EPOLLHUP…).
  using FdHandler = std::function<void(std::uint32_t events)>;
  using Task = std::function<void()>;
  using TimerId = std::uint64_t;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Runs until stop(); dispatches I/O events, posted tasks, and timers on
  /// the calling thread (which becomes "the loop thread").
  void run();

  /// Signals run() to return after finishing the current dispatch round and
  /// draining already-posted tasks. Safe from any thread.
  void stop();

  /// Enqueues `task` for execution on the loop thread. Safe from any
  /// thread, including the loop thread itself (runs next round, no
  /// recursion). Tasks posted after stop() but before run() returns still
  /// execute; tasks posted later are discarded when the loop is destroyed.
  void post(Task task);

  /// Registers `fd` with the given epoll interest mask. Loop thread only
  /// (or before run() starts).
  void add_fd(int fd, std::uint32_t events, FdHandler handler);

  /// Replaces the interest mask of a registered fd. Loop thread only.
  void modify_fd(int fd, std::uint32_t events);

  /// Unregisters `fd` (does not close it). Pending events already reported
  /// in the current round are suppressed. Loop thread only.
  void remove_fd(int fd);

  /// One-shot timer: runs `task` on the loop thread ~`delay_seconds` from
  /// now. Loop thread only. Returns an id usable with cancel_timer.
  TimerId add_timer(double delay_seconds, Task task);

  /// Cancels a pending timer (no-op if already fired). Loop thread only.
  void cancel_timer(TimerId id);

  /// True when called from the thread currently inside run().
  [[nodiscard]] bool in_loop_thread() const;

  /// Executes all tasks currently posted and returns once they ran — a
  /// shutdown barrier: after engine workers are joined, drain() guarantees
  /// every completion they posted has been delivered to its connection.
  /// Must NOT be called from the loop thread.
  void drain();

 private:
  struct Timer {
    double deadline;  // steady seconds (monotonic_seconds())
    TimerId id;
    bool operator>(const Timer& other) const {
      return deadline > other.deadline;
    }
  };

  void run_posted_tasks();
  void fire_due_timers();
  void rearm_timerfd();
  void drain_eventfd();
  [[nodiscard]] static double monotonic_seconds();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int timer_fd_ = -1;

  std::atomic<bool> stopping_{false};
  std::atomic<std::thread::id> loop_thread_{};

  std::mutex task_mutex_;
  std::vector<Task> tasks_ AUTOPN_GUARDED_BY(task_mutex_);

  // Loop-thread state (no locks).
  std::unordered_map<int, std::shared_ptr<FdHandler>> handlers_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  std::unordered_map<TimerId, Task> timer_tasks_;
  TimerId next_timer_id_ = 1;
};

}  // namespace autopn::net
