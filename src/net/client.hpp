#pragma once
// Blocking client for the wire protocol — the counterpart of NetServer used
// by netload, the benches, and the tests. One Client owns one TCP
// connection; connect() performs the Hello/HelloAck handshake before
// returning, so a constructed client is ready to send.
//
// Responses can arrive out of request order (the engine's workers complete
// requests concurrently), so the client keeps a small reorder buffer:
// recv() hands back responses in arrival order, call() filters for one
// specific request id while buffering the rest.
//
// Thread model: at most one sender thread (send/call) and one receiver
// thread (recv) — the socket is full-duplex and the two paths share only
// the atomic request-id counter. netload's open-loop generator uses exactly
// this split; single-threaded request/response use is the degenerate case.
//
// I/O failures (peer reset, mid-request disconnect chaos) are not
// exceptions here: they mark the client closed, send() returns false and
// recv() returns std::nullopt, and the caller decides whether to reconnect.
// Only establishment errors (connect/handshake) throw.

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "net/wire.hpp"

namespace autopn::net {

class Client {
 public:
  /// Connects and completes the handshake; throws std::system_error on
  /// connection failure and std::runtime_error on a rejected/garbled
  /// handshake. `timeout_seconds` bounds the handshake wait.
  static Client connect(const std::string& host, std::uint16_t port,
                        double timeout_seconds = 5.0);

  Client() = default;  ///< disconnected shell; send/recv fail until connect
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request frame (blocking write — server-side read
  /// backpressure propagates here as a stalled send). Returns the request
  /// id, or std::nullopt when the connection is/became unusable.
  std::optional<std::uint64_t> send(
      std::uint16_t handler_id = 0, std::uint16_t tenant_id = 0,
      std::uint64_t deadline_us = 0,
      const std::vector<std::uint8_t>& payload = {});

  /// Next response in arrival order; waits up to `timeout_seconds`.
  /// std::nullopt on timeout or a dead connection (check closed()).
  std::optional<ResponseFrame> recv(double timeout_seconds);

  /// Simple RPC: send + wait for that id (other responses are buffered for
  /// later recv/call). std::nullopt on timeout or connection loss.
  std::optional<ResponseFrame> call(std::uint16_t handler_id = 0,
                                    std::uint16_t tenant_id = 0,
                                    std::uint64_t deadline_us = 0,
                                    double timeout_seconds = 5.0);

  [[nodiscard]] bool connected() const noexcept {
    return fd_ >= 0 && !closed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_relaxed);
  }

  void close();

 private:
  /// Reads until ≥1 response is buffered or the deadline passes.
  bool fill_buffer(double timeout_seconds);

  int fd_ = -1;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<bool> closed_{false};  ///< either side may observe the break
  bool handshaken_ = false;          ///< receiver side: HelloAck(ok) seen
  FrameDecoder decoder_;
  std::deque<ResponseFrame> pending_;
};

}  // namespace autopn::net
