#pragma once
// Blocking client for the wire protocol — the counterpart of NetServer used
// by netload, the benches, and the tests. One Client owns one TCP
// connection; connect() performs the Hello/HelloAck handshake before
// returning, so a constructed client is ready to send.
//
// Responses can arrive out of request order (the engine's workers complete
// requests concurrently), so the client keeps a small reorder buffer:
// recv() hands back responses in arrival order, call() filters for one
// specific request id while buffering the rest.
//
// Thread model: at most one sender thread (send/call) and one receiver
// thread (recv) — the socket is full-duplex and the two paths share only
// the atomic request-id counter. netload's open-loop generator uses exactly
// this split; single-threaded request/response use is the degenerate case.
//
// I/O failures (peer reset, mid-request disconnect chaos) are not
// exceptions here: they mark the client closed, send() returns false and
// recv() returns std::nullopt, and the caller decides whether to reconnect.
// Only establishment errors (connect/handshake) throw.

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "net/wire.hpp"

namespace autopn::net {

/// Retry schedule for connect_with_backoff: capped exponential delays
/// between attempts, each attempt bounded by `attempt_timeout_seconds`
/// (which covers both the TCP connect and the handshake).
struct BackoffPolicy {
  double attempt_timeout_seconds = 1.0;
  double initial_backoff_seconds = 0.05;
  double max_backoff_seconds = 1.0;
  int max_attempts = 5;
};

class Client {
 public:
  /// Connects and completes the handshake; throws std::system_error on
  /// connection failure and std::runtime_error on a rejected/garbled
  /// handshake. `timeout_seconds` bounds the TCP connect (non-blocking
  /// connect + poll — a dead or firewalled backend fails in bounded time
  /// instead of pinning the caller to the kernel's SYN retry schedule)
  /// and, separately, the handshake wait.
  static Client connect(const std::string& host, std::uint16_t port,
                        double timeout_seconds = 5.0);

  /// Retrying wrapper: attempts connect() under `policy`, sleeping the
  /// capped-exponential backoff between failures. std::nullopt once
  /// max_attempts establishment failures accumulate — never throws.
  static std::optional<Client> connect_with_backoff(
      const std::string& host, std::uint16_t port,
      const BackoffPolicy& policy = {});

  Client() = default;  ///< disconnected shell; send/recv fail until connect
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request frame (blocking write — server-side read
  /// backpressure propagates here as a stalled send). Returns the request
  /// id, or std::nullopt when the connection is/became unusable.
  std::optional<std::uint64_t> send(
      std::uint16_t handler_id = 0, std::uint16_t tenant_id = 0,
      std::uint64_t deadline_us = 0,
      const std::vector<std::uint8_t>& payload = {});

  /// Next response in arrival order; waits up to `timeout_seconds`.
  /// std::nullopt on timeout or a dead connection (check closed()).
  std::optional<ResponseFrame> recv(double timeout_seconds);

  /// Simple RPC: send + wait for that id (other responses are buffered for
  /// later recv/call). std::nullopt on timeout or connection loss.
  std::optional<ResponseFrame> call(std::uint16_t handler_id = 0,
                                    std::uint16_t tenant_id = 0,
                                    std::uint64_t deadline_us = 0,
                                    double timeout_seconds = 5.0);

  /// Asks the server for its KPI aggregates (minor >= 1 only — returns
  /// false on a legacy connection). The answer arrives via poll_stats().
  bool send_stats_request();

  /// Next buffered StatsFrame, reading the socket up to `timeout_seconds`.
  /// Response frames seen while waiting are buffered for recv()/call().
  std::optional<StatsFrame> poll_stats(double timeout_seconds);

  /// Sends one membership control request (minor >= 2 only — returns false
  /// on an older connection). The answer arrives via poll_membership().
  bool send_membership(const MembershipRequest& request);

  /// Next buffered MembershipFrame, reading the socket up to
  /// `timeout_seconds`. Other frames seen while waiting are buffered.
  std::optional<MembershipFrame> poll_membership(double timeout_seconds);

  /// The minor negotiated at handshake (0 when talking to a legacy peer).
  [[nodiscard]] std::uint16_t wire_minor() const noexcept {
    return wire_minor_;
  }

  [[nodiscard]] bool connected() const noexcept {
    return fd_ >= 0 && !closed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_relaxed);
  }

  void close();

  /// Half-close from any thread: marks the client closed and shuts the
  /// socket down so a receiver blocked in recv()/poll_stats() wakes up
  /// promptly. The fd itself stays valid until close()/destruction, so
  /// this is safe to call while the receiver thread is inside recv().
  void shutdown_socket();

 private:
  /// Reads until ≥1 response is buffered or the deadline passes.
  bool fill_buffer(double timeout_seconds);

  /// One poll+recv+decode round; true after any successfully processed
  /// batch (which may have buffered only stats or the handshake ack).
  bool read_batch(double timeout_seconds);

  int fd_ = -1;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<bool> closed_{false};  ///< either side may observe the break
  bool handshaken_ = false;          ///< receiver side: HelloAck(ok) seen
  std::uint16_t wire_minor_ = 0;     ///< set once at handshake, then const
  FrameDecoder decoder_;
  std::deque<ResponseFrame> pending_;
  std::deque<StatsFrame> pending_stats_;
  std::deque<MembershipFrame> pending_membership_;
};

}  // namespace autopn::net
