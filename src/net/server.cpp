#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <system_error>
#include <utility>

#include "util/failpoint.hpp"

namespace autopn::net {

namespace {

constexpr std::uint32_t kEpollIn = EPOLLIN;
constexpr std::uint32_t kEpollOut = EPOLLOUT;

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error{errno, std::generic_category(), what};
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

/// Monotonic seconds for wire-stage stamps (only ever differenced).
double mono_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

NetServer::NetServer(serve::ServeEngine& engine, HandlerTable handlers,
                     NetServerConfig config)
    : owned_dispatcher_(
          std::make_unique<EngineDispatcher>(engine, std::move(handlers))),
      dispatcher_(owned_dispatcher_.get()),
      config_(std::move(config)) {
  setup_listener();  // before the loop thread exists — registration is safe
  loop_thread_ = std::thread{[this] { loop_.run(); }};
}

NetServer::NetServer(RequestDispatcher& dispatcher, NetServerConfig config)
    : dispatcher_(&dispatcher), config_(std::move(config)) {
  setup_listener();
  loop_thread_ = std::thread{[this] { loop_.run(); }};
}

NetServer::~NetServer() { shutdown(); }

void NetServer::setup_listener() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = EINVAL;
    throw_errno("inet_pton");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("bind/listen");
  }
  set_nonblocking(listen_fd_);

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  loop_.add_fd(listen_fd_, kEpollIn, [this](std::uint32_t) { on_acceptable(); });
}

void NetServer::on_acceptable() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept error; the listener stays armed
    }
    // Chaos hook: reject (error mode) or stall (delay mode) fresh
    // connections — connection-churn chaos at the very first step.
    bool injected_reject = false;
    AUTOPN_FAILPOINT("net.accept", injected_reject = true);
    if (injected_reject || connections_.size() >= config_.max_connections ||
        draining_.load(std::memory_order_relaxed)) {
      ::close(fd);
      rejected_accepts_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    set_nodelay(fd);
    if (config_.so_sndbuf > 0) {
      const int size = config_.so_sndbuf;
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &size, sizeof size);
    }

    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    const std::uint64_t id = conn->id;
    conn->handshake_timer = loop_.add_timer(config_.handshake_timeout, [this, id] {
      auto it = connections_.find(id);
      if (it != connections_.end() && !it->second->handshaken) {
        close_connection(id, CloseReason::kProtocol);
      }
    });
    connections_.emplace(id, std::move(conn));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    open_connections_.store(connections_.size(), std::memory_order_relaxed);
    loop_.add_fd(fd, kEpollIn,
                 [this, id](std::uint32_t events) { on_connection_event(id, events); });
  }
}

void NetServer::on_connection_event(std::uint64_t conn_id, std::uint32_t events) {
  if (events & (EPOLLHUP | EPOLLERR)) {
    // Drain whatever the peer managed to send, then close; EPOLLHUP with
    // readable data still delivers the data first under level triggering.
    if ((events & EPOLLIN) == 0 || !on_readable(conn_id)) {
      auto it = connections_.find(conn_id);
      if (it != connections_.end()) close_connection(conn_id, CloseReason::kPeer);
      return;
    }
    close_connection(conn_id, CloseReason::kPeer);
    return;
  }
  if ((events & EPOLLIN) != 0 && !on_readable(conn_id)) return;
  if ((events & EPOLLOUT) != 0) (void)flush(conn_id);
}

bool NetServer::on_readable(std::uint64_t conn_id) {
  for (;;) {
    auto it = connections_.find(conn_id);
    if (it == connections_.end()) return false;
    Connection& conn = *it->second;
    if (conn.reading_paused || conn.draining) return true;

    // Chaos hooks: error mode fails the read (connection dropped
    // mid-request), delay mode makes a slow network.
    bool injected_fail = false;
    AUTOPN_FAILPOINT("net.read", injected_fail = true);
    if (injected_fail) {
      close_connection(conn_id, CloseReason::kPeer);
      return false;
    }

    std::array<std::uint8_t, 16384> buf;
    const ssize_t n = ::read(conn.fd, buf.data(), buf.size());
    if (n > 0) {
      conn.decoder.feed(buf.data(), static_cast<std::size_t>(n));
      if (!process_frames(conn_id)) return false;
      continue;
    }
    if (n == 0) {  // orderly peer close
      close_connection(conn_id, CloseReason::kPeer);
      return false;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    close_connection(conn_id, CloseReason::kPeer);
    return false;
  }
}

bool NetServer::process_frames(std::uint64_t conn_id) {
  for (;;) {
    auto it = connections_.find(conn_id);
    if (it == connections_.end()) return false;
    Connection& conn = *it->second;
    auto frame = conn.decoder.next();
    if (!frame) {
      if (conn.decoder.failed()) {
        close_connection(conn_id, CloseReason::kProtocol);
        return false;
      }
      return true;  // partial frame — wait for more bytes
    }
    if (!conn.handshaken) {
      const auto hello = frame->type == FrameType::kHello
                             ? parse_hello(frame->body)
                             : std::nullopt;
      const bool ok = hello && hello->magic == kWireMagic &&
                      hello->version == kWireVersion;
      HelloAckFrame ack;
      ack.ok = ok;
      // Mirror the requester's form: a legacy (minor-0) hello gets the
      // byte-identical v1.0 short ack it can parse; a modern hello gets
      // the negotiated min(client, server) minor.
      ack.minor = ok ? std::min(hello->minor, kWireMinor) : 0;
      conn.wire_minor = ack.minor;
      std::vector<std::uint8_t> bytes;
      encode_hello_ack(bytes, ack);
      // A failed write closes (and frees) the connection; `conn` is dead.
      const bool alive = send_bytes(conn, bytes, /*is_response=*/false);
      if (!ok) {
        // Flush the NAK best-effort, then drop: a version-mismatched peer
        // gets a definite answer instead of a silent reset.
        close_connection(conn_id, CloseReason::kProtocol);
        return false;
      }
      if (!alive) return false;
      conn.handshaken = true;
      loop_.cancel_timer(conn.handshake_timer);
      continue;
    }
    if (frame->type == FrameType::kStatsRequest) {
      // Minor-1 construct: on a legacy connection it's a protocol error.
      if (conn.wire_minor < 1) {
        close_connection(conn_id, CloseReason::kProtocol);
        return false;
      }
      std::vector<std::uint8_t> bytes;
      encode_stats(bytes, dispatcher_->stats());
      // Stats frames ride outside the request/response ledger.
      if (!send_bytes(conn, bytes, /*is_response=*/false)) return false;
      continue;
    }
    if (frame->type == FrameType::kMembershipRequest) {
      // Minor-2 construct: on an older connection it's a protocol error.
      if (conn.wire_minor < 2) {
        close_connection(conn_id, CloseReason::kProtocol);
        return false;
      }
      const auto request = parse_membership_request(frame->body);
      if (!request) {
        close_connection(conn_id, CloseReason::kProtocol);
        return false;
      }
      std::vector<std::uint8_t> bytes;
      // Runs on the loop thread — the same thread that owns a Router
      // dispatcher's membership state, so no extra synchronization.
      encode_membership(bytes, dispatcher_->membership(*request));
      // Membership frames ride outside the request/response ledger, like
      // stats: they are control plane, not dispatched requests.
      if (!send_bytes(conn, bytes, /*is_response=*/false)) return false;
      continue;
    }
    if (frame->type != FrameType::kRequest) {
      close_connection(conn_id, CloseReason::kProtocol);
      return false;
    }
    auto request = parse_request(frame->body);
    if (!request) {
      close_connection(conn_id, CloseReason::kProtocol);
      return false;
    }
    handle_request(conn, std::move(*request));
  }
}

void NetServer::handle_request(Connection& conn, RequestFrame frame) {
  requests_decoded_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t conn_id = conn.id;
  const std::uint64_t request_id = frame.request_id;
  const std::uint16_t wire_minor = conn.wire_minor;
  // The dispatcher calls respond exactly once, from any thread — the
  // ledger stays exact because respond always counts responses_enqueued
  // and deliver() accounts written-vs-dropped on the loop.
  //
  // Accept-stage cost: dispatch() runs admission synchronously on the loop
  // thread (the engine path is submit(); a worker picks the request up
  // later), so its duration is exactly decode→admission-verdict.
  const double dispatched_at = mono_seconds();
  dispatcher_->dispatch(
      std::move(frame),
      [this, conn_id, request_id, wire_minor](ResponseFrame response) {
        respond(conn_id, request_id, wire_minor, std::move(response));
      });
  accept_latency_.record(mono_seconds() - dispatched_at);
}

void NetServer::respond(std::uint64_t conn_id, std::uint64_t request_id,
                        std::uint16_t wire_minor, ResponseFrame response) {
  // Dispatcher context (engine worker, router io thread, or the loop
  // itself): encode here (cheap, no shared state) and hand the bytes to
  // the loop. Workers never touch the socket — a stalled or dead
  // connection cannot stall them.
  response.request_id = request_id;
  if (response.status == Status::kShed || response.status == Status::kClosing) {
    shed_responses_.fetch_add(1, std::memory_order_relaxed);
  }
  std::vector<std::uint8_t> bytes;
  encode_response(bytes, response, wire_minor);
  responses_enqueued_.fetch_add(1, std::memory_order_relaxed);
  // Reply-stage stamp: from here (the worker finished; the response exists
  // as bytes) to the moment the last byte is flushed to the socket.
  const double posted_at = mono_seconds();
  loop_.post([this, conn_id, posted_at, bytes = std::move(bytes)]() mutable {
    deliver(conn_id, std::move(bytes), posted_at);
  });
}

void NetServer::deliver(std::uint64_t conn_id, std::vector<std::uint8_t> bytes,
                        double posted_at) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) {
    // Mid-request disconnect: the connection died while its request was in
    // flight. The response is accounted and dropped — never a crash/leak.
    responses_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  send_bytes(*it->second, bytes, /*is_response=*/true, posted_at);
}

bool NetServer::send_bytes(Connection& conn, const std::vector<std::uint8_t>& bytes,
                           bool is_response, double posted_at) {
  conn.outbuf.insert(conn.outbuf.end(), bytes.begin(), bytes.end());
  conn.bytes_queued += bytes.size();
  if (is_response) {
    conn.response_ends.push_back(conn.bytes_queued);
    conn.response_posted.push_back(posted_at);
  }
  return flush(conn.id);
}

bool NetServer::flush(std::uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return false;
  Connection& conn = *it->second;
  while (conn.outbuf_offset < conn.outbuf.size()) {
    // Chaos hooks: error mode fails the write (peer reset under load),
    // delay mode models a congested uplink and exercises backpressure.
    bool injected_fail = false;
    AUTOPN_FAILPOINT("net.write", injected_fail = true);
    if (injected_fail) {
      close_connection(conn_id, CloseReason::kPeer);
      return false;
    }
    const ssize_t n =
        ::send(conn.fd, conn.outbuf.data() + conn.outbuf_offset,
               conn.outbuf.size() - conn.outbuf_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn.outbuf_offset += static_cast<std::size_t>(n);
      conn.bytes_flushed += static_cast<std::uint64_t>(n);
      while (!conn.response_ends.empty() &&
             conn.response_ends.front() <= conn.bytes_flushed) {
        conn.response_ends.erase(conn.response_ends.begin());
        reply_latency_.record(mono_seconds() - conn.response_posted.front());
        conn.response_posted.erase(conn.response_posted.begin());
        responses_written_.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_connection(conn_id, CloseReason::kPeer);
    return false;
  }
  if (conn.outbuf_offset == conn.outbuf.size()) {
    conn.outbuf.clear();
    conn.outbuf_offset = 0;
  } else if (conn.outbuf_offset > 65536) {
    conn.outbuf.erase(conn.outbuf.begin(),
                      conn.outbuf.begin() +
                          static_cast<std::ptrdiff_t>(conn.outbuf_offset));
    conn.outbuf_offset = 0;
  }
  update_interest(conn);
  return true;
}

void NetServer::update_interest(Connection& conn) {
  const std::size_t pending = conn.outbuf.size() - conn.outbuf_offset;
  if (!conn.reading_paused && pending > config_.max_outbound_bytes) {
    // Write backpressure: a reader that cannot keep up with its responses
    // stops being read — its request stream throttles at the socket instead
    // of growing this buffer without bound.
    conn.reading_paused = true;
    backpressure_pauses_.fetch_add(1, std::memory_order_relaxed);
  } else if (conn.reading_paused && pending < config_.max_outbound_bytes / 2) {
    conn.reading_paused = false;
  }
  std::uint32_t events = 0;
  if (!conn.reading_paused && !conn.draining) events |= kEpollIn;
  if (pending > 0) events |= kEpollOut;
  loop_.modify_fd(conn.fd, events);
}

void NetServer::close_connection(std::uint64_t conn_id, CloseReason reason) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;
  loop_.cancel_timer(conn.handshake_timer);
  // Responses parked in the buffer (or still unsent past the flushed mark)
  // die with the connection — counted, never leaked.
  responses_dropped_.fetch_add(conn.response_ends.size(),
                               std::memory_order_relaxed);
  switch (reason) {
    case CloseReason::kPeer:
      disconnects_.fetch_add(1, std::memory_order_relaxed);
      break;
    case CloseReason::kProtocol:
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    case CloseReason::kShutdown:
      break;
  }
  loop_.remove_fd(conn.fd);
  ::close(conn.fd);
  connections_.erase(it);
  open_connections_.store(connections_.size(), std::memory_order_relaxed);
}

bool NetServer::flushed_everything() const {
  for (const auto& [id, conn] : connections_) {
    if (conn->outbuf_offset < conn->outbuf.size()) return false;
  }
  return true;
}

void NetServer::shutdown() {
  std::scoped_lock lock{shutdown_mutex_};
  if (shut_down_) return;
  shut_down_ = true;

  // Phase 1 (loop): stop accepting and stop reading — after this task runs,
  // no new request can enter the system through this server.
  loop_.post([this] {
    draining_.store(true, std::memory_order_relaxed);
    if (listen_fd_ >= 0) {
      loop_.remove_fd(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    for (auto& [id, conn] : connections_) {
      conn->draining = true;
      update_interest(*conn);
    }
  });
  loop_.drain();

  // Phase 2: drain the dispatcher — on return every in-flight dispatch has
  // responded, and therefore every response has been posted to the loop.
  // Phase 3 makes the loop deliver them.
  dispatcher_->drain();
  loop_.drain();

  // Phase 4: flush buffered responses until every buffer is empty or the
  // drain timeout passes (a dead/slow peer must not wedge shutdown).
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(config_.drain_timeout);
  for (;;) {
    std::promise<bool> done;
    auto future = done.get_future();
    loop_.post([this, &done] { done.set_value(flushed_everything()); });
    if (future.get() || std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
  }

  // Phase 5: close every connection (leftover responses count as dropped),
  // then stop the loop. After this the response ledger is exact.
  loop_.post([this] {
    std::vector<std::uint64_t> ids;
    ids.reserve(connections_.size());
    for (const auto& [id, conn] : connections_) ids.push_back(id);
    for (const std::uint64_t id : ids) {
      close_connection(id, CloseReason::kShutdown);
    }
  });
  loop_.drain();
  loop_.stop();
  if (loop_thread_.joinable()) loop_thread_.join();
}

NetServerReport NetServer::report() const {
  NetServerReport r;
  r.accepted = accepted_.load(std::memory_order_relaxed);
  r.rejected_accepts = rejected_accepts_.load(std::memory_order_relaxed);
  r.disconnects = disconnects_.load(std::memory_order_relaxed);
  r.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  r.requests_decoded = requests_decoded_.load(std::memory_order_relaxed);
  r.responses_enqueued = responses_enqueued_.load(std::memory_order_relaxed);
  r.responses_written = responses_written_.load(std::memory_order_relaxed);
  r.responses_dropped = responses_dropped_.load(std::memory_order_relaxed);
  r.shed_responses = shed_responses_.load(std::memory_order_relaxed);
  r.backpressure_pauses = backpressure_pauses_.load(std::memory_order_relaxed);
  r.open_connections = open_connections_.load(std::memory_order_relaxed);
  r.accept = accept_latency_.summary();
  r.reply = reply_latency_.summary();
  return r;
}

}  // namespace autopn::net
