#include "net/netload.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/client.hpp"
#include "serve/loadgen.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace autopn::net {

namespace {

using SteadyClock = std::chrono::steady_clock;

double elapsed_seconds(SteadyClock::time_point since) {
  return std::chrono::duration<double>(SteadyClock::now() - since).count();
}

/// Per-worker tallies, merged into the NetLoadResult at the end.
struct WorkerStats {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t shed_router = 0;
  std::uint64_t shed_router_dead = 0;
  std::uint64_t shed_router_transient = 0;
  std::uint64_t expired = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t io_errors = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t unanswered = 0;
  double retry_after_sum = 0.0;
  std::uint64_t retry_after_count = 0;
};

struct SharedState {
  serve::LatencyRecorder latency{4};
  std::mutex merge_mutex;
  NetLoadResult result AUTOPN_GUARDED_BY(merge_mutex);
};

void merge(SharedState& shared, const WorkerStats& stats) {
  std::scoped_lock lock{shared.merge_mutex};
  NetLoadResult& r = shared.result;
  r.sent += stats.sent;
  r.ok += stats.ok;
  r.shed += stats.shed;
  r.shed_router += stats.shed_router;
  r.shed_router_dead += stats.shed_router_dead;
  r.shed_router_transient += stats.shed_router_transient;
  r.expired += stats.expired;
  r.failed += stats.failed;
  r.rejected += stats.rejected;
  r.io_errors += stats.io_errors;
  r.reconnects += stats.reconnects;
  r.unanswered += stats.unanswered;
  r.mean_retry_after += stats.retry_after_sum;  // normalized after join
}

std::optional<Client> dial(const NetLoadParams& params) {
  try {
    return Client::connect(params.host, params.port, 2.0);
  } catch (...) {
    return std::nullopt;
  }
}

void count_response(const ResponseFrame& response, WorkerStats& stats,
                    std::unordered_map<std::uint64_t, SteadyClock::time_point>&
                        in_flight,
                    SharedState& shared) {
  auto it = in_flight.find(response.request_id);
  const bool known = it != in_flight.end();
  switch (response.status) {
    case Status::kOk:
      ++stats.ok;
      if (known) {
        shared.latency.record(
            std::chrono::duration<double>(SteadyClock::now() - it->second)
                .count());
      }
      break;
    case Status::kShed:
    case Status::kClosing:
      ++stats.shed;
      if (response.shed_origin == ShedOrigin::kRouter) {
        ++stats.shed_router;
        if (response.shed_detail == ShedDetail::kDeadBackend) {
          ++stats.shed_router_dead;
        } else if (response.shed_detail == ShedDetail::kTransient) {
          ++stats.shed_router_transient;
        }
      }
      stats.retry_after_sum +=
          static_cast<double>(response.retry_after_us) / 1e6;
      ++stats.retry_after_count;
      break;
    case Status::kExpired:
      ++stats.expired;
      break;
    case Status::kFailed:
      ++stats.failed;
      break;
    case Status::kRejected:
      ++stats.rejected;
      break;
  }
  if (known) in_flight.erase(it);
}

/// One open-loop connection: paces its own Poisson stream, pipelines
/// requests, and drains responses while waiting for the next arrival —
/// single-threaded, so the Client never sees concurrent use.
void open_loop_worker(const NetLoadParams& params, std::size_t index,
                      SharedState& shared, SteadyClock::time_point start) {
  WorkerStats stats;
  std::unordered_map<std::uint64_t, SteadyClock::time_point> in_flight;
  const auto end = start + std::chrono::duration<double>(params.duration);
  serve::PoissonArrivals arrivals{
      params.rate / static_cast<double>(std::max<std::size_t>(
                        params.connections, 1)),
      params.seed + 0x9e3779b9ull * (index + 1)};
  const std::vector<std::uint8_t> payload(params.payload_bytes, 0xab);

  auto client = dial(params);
  auto abandon_in_flight = [&] {
    stats.unanswered += in_flight.size();
    in_flight.clear();
  };
  auto redial = [&]() -> bool {
    // The old connection's pipelined requests died with it.
    abandon_in_flight();
    ++stats.io_errors;
    if (!params.reconnect) return false;
    while (SteadyClock::now() < end) {
      client = dial(params);
      if (client) {
        ++stats.reconnects;
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds{10});
    }
    return false;
  };

  std::uint64_t request_index = 0;
  auto next_arrival = SteadyClock::now();
  while (SteadyClock::now() < end) {
    if (!client || client->closed()) {
      if (!redial()) break;
    }
    next_arrival += std::chrono::duration_cast<SteadyClock::duration>(
        std::chrono::duration<double>(arrivals.next_gap()));
    // Drain responses while waiting out the gap (poll sleeps for us).
    while (SteadyClock::now() < next_arrival) {
      const double wait = std::min(
          std::chrono::duration<double>(next_arrival - SteadyClock::now())
              .count(),
          0.010);
      if (auto response = client->recv(std::max(wait, 0.0))) {
        count_response(*response, stats, in_flight, shared);
      } else if (client->closed()) {
        break;
      }
    }
    if (client->closed()) continue;  // redial at the top of the loop
    const auto tenant =
        static_cast<std::uint16_t>((index + request_index) %
                                   std::max<std::uint16_t>(params.tenants, 1));
    ++request_index;
    const auto send_time = SteadyClock::now();
    const auto id = client->send(params.handler_id, tenant, params.deadline_us,
                                 payload);
    if (!id) continue;  // closed mid-send; redial next iteration
    ++stats.sent;
    in_flight.emplace(*id, send_time);
  }

  // Grace period: collect stragglers for requests already on the wire.
  const auto grace_end =
      SteadyClock::now() + std::chrono::duration<double>(params.drain_grace);
  while (!in_flight.empty() && client && !client->closed() &&
         SteadyClock::now() < grace_end) {
    if (auto response = client->recv(0.050)) {
      count_response(*response, stats, in_flight, shared);
    }
  }
  abandon_in_flight();
  merge(shared, stats);
}

/// One closed-loop client: send, wait for that response, honor a shed
/// retry-after, think, repeat.
void closed_loop_worker(const NetLoadParams& params, std::size_t index,
                        SharedState& shared, SteadyClock::time_point start) {
  WorkerStats stats;
  std::unordered_map<std::uint64_t, SteadyClock::time_point> in_flight;
  util::Rng rng{params.seed + 7919 * (index + 1)};
  const auto end = start + std::chrono::duration<double>(params.duration);
  auto client = dial(params);

  while (SteadyClock::now() < end) {
    if (!client || client->closed()) {
      ++stats.io_errors;
      if (!params.reconnect) break;
      client = dial(params);
      if (!client) {
        std::this_thread::sleep_for(std::chrono::milliseconds{10});
        continue;
      }
      ++stats.reconnects;
    }
    const auto tenant = static_cast<std::uint16_t>(
        index % std::max<std::uint16_t>(params.tenants, 1));
    const auto send_time = SteadyClock::now();
    const auto id = client->send(params.handler_id, tenant, params.deadline_us);
    if (!id) continue;
    ++stats.sent;
    in_flight.emplace(*id, send_time);
    auto response = client->recv(5.0);
    if (!response) {
      stats.unanswered += in_flight.size();
      in_flight.clear();
      continue;  // timeout or dead connection; redial above
    }
    const bool was_shed = response->status == Status::kShed ||
                          response->status == Status::kClosing;
    const double retry_after =
        static_cast<double>(response->retry_after_us) / 1e6;
    count_response(*response, stats, in_flight, shared);
    if (was_shed) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          std::min(retry_after, 0.050)));
    }
    if (params.think_time > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          rng.exponential(1.0 / params.think_time)));
    }
  }
  stats.unanswered += in_flight.size();
  merge(shared, stats);
}

}  // namespace

NetLoadResult run_netload(const NetLoadParams& params) {
  // Probe so a wrong port fails fast with a real error instead of a silent
  // all-zero result. A few retries ride out transient failures (e.g. an
  // armed net.accept/net.write failpoint killing the handshake) that the
  // workers themselves would survive by redialling.
  for (int attempt = 0;; ++attempt) {
    try {
      Client::connect(params.host, params.port, 2.0).close();
      break;
    } catch (...) {
      if (attempt >= 4) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds{50});
    }
  }

  SharedState shared;
  const auto start = SteadyClock::now();
  {
    std::vector<std::jthread> workers;
    const std::size_t n = std::max<std::size_t>(params.connections, 1);
    workers.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      workers.emplace_back([&params, i, &shared, start] {
        if (params.closed_loop) {
          closed_loop_worker(params, i, shared, start);
        } else {
          open_loop_worker(params, i, shared, start);
        }
      });
    }
  }  // join
  NetLoadResult result = shared.result;
  result.duration = elapsed_seconds(start);
  result.latency = shared.latency.summary();
  // merge() accumulated the per-worker retry_after sums; normalize.
  result.mean_retry_after =
      result.shed > 0 ? result.mean_retry_after / static_cast<double>(result.shed)
                      : 0.0;
  return result;
}

}  // namespace autopn::net
