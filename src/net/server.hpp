#pragma once
// NetServer — the socket acceptor that puts the serving engine on the wire.
// A single epoll EventLoop (own thread) owns the listening socket and every
// connection; decoded Request frames are bridged into the existing
// ServeEngine admission path, and the engine's completion callback posts the
// response back onto the loop so engine workers never block on a socket.
//
// Dataflow (one request):
//   client ──frame──▸ Connection::on_readable ─▸ FrameDecoder
//        ─▸ ServeEngine::submit            (admission: shed ⇒ kShed + hint)
//        ─▸ worker runs the PN transaction ─▸ on_complete(RequestResult)
//        ─▸ loop_.post(deliver)            (worker returns immediately)
//        ─▸ Connection outbound buffer ──write/EPOLLOUT──▸ client
//
// Backpressure: each connection's outbound buffer is bounded. While it holds
// more than `max_outbound_bytes` the server stops reading that connection
// (EPOLLIN dropped) — a slow reader throttles its own request stream instead
// of ballooning server memory — and resumes once the buffer drains below
// half the cap. EPOLLOUT is armed only while there are bytes to flush.
//
// Dead connections: completions address connections by id, never by pointer.
// A response whose connection has gone (mid-request disconnect) is counted
// `responses_dropped` and freed — it cannot crash the loop or leak.
//
// Shutdown is deterministic (see shutdown()): after it returns,
//   requests_decoded == responses_enqueued and
//   responses_enqueued == responses_written + responses_dropped —
// the drain-on-close invariant extended from the queue to the socket.
//
// Failpoint sites: net.accept (reject/stall incoming connections), net.read
// (fail/stall connection reads), net.write (fail/stall response writes).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/dispatcher.hpp"
#include "net/event_loop.hpp"
#include "net/wire.hpp"
#include "serve/engine.hpp"
#include "util/thread_annotations.hpp"

namespace autopn::net {

struct NetServerConfig {
  std::string bind_address = "127.0.0.1";  ///< IPv4 dotted quad
  std::uint16_t port = 0;                  ///< 0 = kernel-assigned, see port()
  std::size_t max_connections = 1024;
  /// Outbound bytes per connection above which the server stops reading it.
  std::size_t max_outbound_bytes = 256 * 1024;
  /// Kernel send-buffer size per accepted connection; 0 keeps the system
  /// default. Shrinking it makes write backpressure observable at loopback
  /// speeds (tests, benches) — the kernel otherwise absorbs hundreds of KB
  /// before the user-space outbound buffer ever fills.
  int so_sndbuf = 0;
  /// Seconds a fresh connection gets to complete the Hello handshake.
  double handshake_timeout = 5.0;
  /// Seconds shutdown() spends flushing buffered responses before it closes
  /// lingering connections and counts the leftovers as dropped.
  double drain_timeout = 2.0;
};

/// Wire-level accounting. After shutdown() the response ledger is exact:
/// requests_decoded == responses_enqueued == responses_written +
/// responses_dropped.
struct NetServerReport {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_accepts = 0;  ///< over limit / injected accept fault
  std::uint64_t disconnects = 0;       ///< peer closed or I/O error
  std::uint64_t protocol_errors = 0;   ///< bad handshake/framing (closed)
  std::uint64_t requests_decoded = 0;
  std::uint64_t responses_enqueued = 0;
  std::uint64_t responses_written = 0;  ///< fully flushed to the socket
  std::uint64_t responses_dropped = 0;  ///< connection died first
  std::uint64_t shed_responses = 0;     ///< kShed/kClosing sent
  std::uint64_t backpressure_pauses = 0;  ///< reads paused on a full outbuf
  std::size_t open_connections = 0;
  /// Wire-stage latency breakdown (the model's WireCosts inputs): accept is
  /// decode→admission verdict (loop-thread dispatch cost per request), reply
  /// is completion→last byte flushed (loop queueing + socket writes).
  serve::LatencyRecorder::Summary accept;
  serve::LatencyRecorder::Summary reply;
};

class NetServer {
 public:
  /// Request frames select a handler by index; ids outside the table get a
  /// kRejected response without touching the engine. Empty handlers fall
  /// back to the engine's default handler.
  using HandlerTable = EngineDispatcher::HandlerTable;

  /// Binds, listens, and starts the loop thread. The engine must outlive
  /// this server; destroy (or shutdown()) the server before stopping the
  /// engine yourself — shutdown() drains the engine as part of its ordered
  /// close. Throws std::system_error when the socket cannot be bound.
  /// (Convenience form: wraps the engine in an owned EngineDispatcher.)
  NetServer(serve::ServeEngine& engine, HandlerTable handlers,
            NetServerConfig config = {});

  /// Serves an arbitrary dispatcher (the router tier uses this). The
  /// dispatcher must outlive the server; its drain() is invoked during
  /// shutdown after reads have stopped.
  NetServer(RequestDispatcher& dispatcher, NetServerConfig config = {});

  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// The actually-bound port (resolves config.port == 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// The server's reactor — for dispatchers that want to share its thread
  /// for their own timers/fds (register via post(); loop-thread-only APIs
  /// apply). Valid for the server's lifetime.
  [[nodiscard]] EventLoop& loop() noexcept { return loop_; }

  /// Ordered deterministic drain; idempotent. Steps: stop accepting and
  /// reading (no new requests), drain the dispatcher (every in-flight
  /// completion fires), drain the loop (every posted response reaches its
  /// connection's buffer), flush buffers until empty or drain_timeout, then
  /// close everything. Safe from any thread except the loop thread.
  void shutdown();

  [[nodiscard]] NetServerReport report() const;

 private:
  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    bool handshaken = false;
    /// Negotiated at handshake: min(client's hello minor, kWireMinor).
    std::uint16_t wire_minor = 0;
    bool reading_paused = false;
    bool draining = false;  ///< shutdown: no further reads, flush only
    FrameDecoder decoder;
    std::vector<std::uint8_t> outbuf;
    std::size_t outbuf_offset = 0;  ///< flushed prefix of outbuf
    /// Cumulative queued-byte marks at which each pending response ends —
    /// how responses_written distinguishes fully-sent responses from bytes
    /// parked in the buffer when the connection dies.
    std::vector<std::uint64_t> response_ends;
    /// Monotonic post time of each pending response, parallel to
    /// response_ends — the reply-stage stamp (completion→flushed).
    std::vector<double> response_posted;
    std::uint64_t bytes_queued = 0;
    std::uint64_t bytes_flushed = 0;
    EventLoop::TimerId handshake_timer = 0;
  };

  enum class CloseReason { kPeer, kProtocol, kShutdown };

  void setup_listener();
  void on_acceptable();
  void on_connection_event(std::uint64_t conn_id, std::uint32_t events);
  // Close-capable paths address connections by id and report liveness, so a
  // handler that lost its connection mid-call cannot touch freed state.
  [[nodiscard]] bool on_readable(std::uint64_t conn_id);
  [[nodiscard]] bool process_frames(std::uint64_t conn_id);
  void handle_request(Connection& conn, RequestFrame frame);
  /// Dispatcher-side respond path: encodes on the caller's thread (worker,
  /// router io, or the loop itself) and posts the bytes to the loop.
  void respond(std::uint64_t conn_id, std::uint64_t request_id,
               std::uint16_t wire_minor, ResponseFrame response);
  /// Loop side: appends an encoded response to the connection (if alive).
  /// `posted_at` is the reply-stage stamp taken in respond().
  void deliver(std::uint64_t conn_id, std::vector<std::uint8_t> bytes,
               double posted_at);
  /// Returns false if the write path closed (and freed) the connection —
  /// the caller's `conn` reference is dangling and must not be touched.
  bool send_bytes(Connection& conn, const std::vector<std::uint8_t>& bytes,
                  bool is_response, double posted_at = 0.0);
  bool flush(std::uint64_t conn_id);
  void update_interest(Connection& conn);
  void close_connection(std::uint64_t conn_id, CloseReason reason);
  [[nodiscard]] bool flushed_everything() const;

  /// Owned only by the engine-convenience constructor; dispatcher_ is the
  /// seam every request goes through either way.
  std::unique_ptr<EngineDispatcher> owned_dispatcher_;
  RequestDispatcher* dispatcher_;
  NetServerConfig config_;

  EventLoop loop_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::uint64_t next_conn_id_ = 1;  ///< loop thread only
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> connections_;

  std::atomic<bool> draining_{false};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_accepts_{0};
  std::atomic<std::uint64_t> disconnects_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> requests_decoded_{0};
  std::atomic<std::uint64_t> responses_enqueued_{0};
  std::atomic<std::uint64_t> responses_written_{0};
  std::atomic<std::uint64_t> responses_dropped_{0};
  std::atomic<std::uint64_t> shed_responses_{0};
  std::atomic<std::uint64_t> backpressure_pauses_{0};
  std::atomic<std::size_t> open_connections_{0};
  /// Wire-stage histograms: accept_ records on the loop thread only, reply_
  /// on the loop thread at flush time (both recorders are thread-safe).
  serve::LatencyRecorder accept_latency_{4};
  serve::LatencyRecorder reply_latency_{4};

  std::mutex shutdown_mutex_;
  bool shut_down_ AUTOPN_GUARDED_BY(shutdown_mutex_) = false;
  std::thread loop_thread_ AUTOPN_GUARDED_BY(shutdown_mutex_);
};

}  // namespace autopn::net
