#include "net/dispatcher.hpp"

#include <algorithm>
#include <utility>

namespace autopn::net {

namespace {

Status status_of(serve::RequestOutcome outcome) {
  switch (outcome) {
    case serve::RequestOutcome::kCompleted: return Status::kOk;
    case serve::RequestOutcome::kExpired: return Status::kExpired;
    case serve::RequestOutcome::kFailed: return Status::kFailed;
  }
  return Status::kFailed;
}

std::uint64_t to_micros(double seconds) {
  return seconds <= 0.0 ? 0 : static_cast<std::uint64_t>(seconds * 1e6);
}

}  // namespace

MembershipFrame RequestDispatcher::membership(const MembershipRequest&) {
  MembershipFrame frame;
  frame.ok = false;
  frame.message = "membership not supported by this dispatcher";
  return frame;
}

EngineDispatcher::EngineDispatcher(serve::ServeEngine& engine,
                                   HandlerTable handlers)
    : engine_(&engine), handlers_(std::move(handlers)) {}

void EngineDispatcher::dispatch(RequestFrame frame, RespondFn respond) {
  const std::size_t table_size = std::max<std::size_t>(handlers_.size(), 1);
  if (frame.handler_id >= table_size) {
    ResponseFrame response;
    response.status = Status::kRejected;
    respond(std::move(response));
    return;
  }
  serve::RequestHandler handler;
  if (frame.handler_id < handlers_.size()) handler = handlers_[frame.handler_id];

  // The completion callback copies `respond`; exactly one of the two paths
  // (admitted → callback, refused → synchronous shed below) ever fires.
  const serve::SubmitResult submit = engine_->submit(
      std::move(handler),
      [respond](const serve::RequestResult& result) {
        ResponseFrame response;
        response.status = status_of(result.outcome);
        response.server_latency_us = to_micros(result.latency);
        respond(std::move(response));
      },
      frame.tenant_id, static_cast<double>(frame.deadline_us) / 1e6);
  if (submit.admitted) return;

  ResponseFrame response;
  response.status =
      engine_->queue().closed() ? Status::kClosing : Status::kShed;
  response.retry_after_us = to_micros(submit.retry_after);
  response.shed_origin = ShedOrigin::kShard;
  respond(std::move(response));
}

void EngineDispatcher::drain() {
  // Workers are joined inside: on return every admitted request's
  // completion (and therefore its respond) has fired.
  engine_->drain_and_stop();
}

StatsFrame EngineDispatcher::stats() {
  const serve::ServeReport report = engine_->report();
  StatsFrame stats;
  stats.offered = report.offered;
  stats.completed = report.completed;
  stats.shed = report.shed;
  stats.expired = report.expired;
  stats.failed = report.failed;
  stats.queue_depth = static_cast<std::uint32_t>(report.queue_depth);
  stats.p50_us = to_micros(report.latency.p50);
  stats.p95_us = to_micros(report.latency.p95);
  stats.p99_us = to_micros(report.latency.p99);
  stats.retry_after_us = to_micros(report.retry_after_hint);
  stats.tenants.reserve(report.tenants.size());
  for (const auto& tenant : report.tenants) {
    TenantStat t;
    t.tenant = tenant.tenant;
    t.count = tenant.latency.count;
    t.p99_us = to_micros(tenant.latency.p99);
    stats.tenants.push_back(t);
  }
  return stats;
}

}  // namespace autopn::net
