#pragma once
// RequestDispatcher — the seam between NetServer's connection machinery and
// whatever actually executes requests. NetServer owns sockets, framing,
// backpressure, and the response ledger; a dispatcher owns the semantics of
// one decoded Request frame. Two implementations exist:
//
//   * EngineDispatcher (here): the original single-process path — handler
//     table lookup, ServeEngine admission, shed/closing verdicts. A
//     NetServer constructed from a ServeEngine uses this internally, so the
//     serving behavior of `autopn serve --listen` is unchanged.
//   * router::Router (src/router/): forwards the frame to a backend shard
//     over a pooled net::Client and responds with the shard's answer (or a
//     router-origin shed when no shard is reachable).
//
// Contract: dispatch() must eventually invoke `respond` EXACTLY once per
// call, from any thread — that is what keeps the server's response ledger
// (decoded == enqueued == written + dropped) exact across implementations.
// drain() is called during server shutdown after reads have stopped; it
// must block until every outstanding dispatch has responded.

#include <cstdint>
#include <functional>

#include "net/wire.hpp"
#include "serve/engine.hpp"

namespace autopn::net {

class RequestDispatcher {
 public:
  /// Sends the response for one dispatched request. The server fills in
  /// request_id and the connection's negotiated wire minor; liveness is the
  /// server's problem (a dead connection counts the response as dropped).
  /// Safe to invoke from any thread, including inside dispatch() itself.
  using RespondFn = std::function<void(ResponseFrame)>;

  virtual ~RequestDispatcher() = default;

  /// Must call `respond` exactly once, now or later.
  virtual void dispatch(RequestFrame frame, RespondFn respond) = 0;

  /// Blocks until every outstanding dispatch has responded. Called once
  /// during server shutdown, after no further dispatches can arrive.
  virtual void drain() = 0;

  /// KPI aggregates served to a kStatsRequest (minor >= 1 connections).
  [[nodiscard]] virtual StatsFrame stats() = 0;

  /// Answer to a kMembershipRequest (minor >= 2 connections), invoked on
  /// the server's loop thread. The base implementation rejects with
  /// ok=false — only the routing tier owns a mutable shard set; a plain
  /// shard answering "not supported" is the correct protocol outcome.
  [[nodiscard]] virtual MembershipFrame membership(
      const MembershipRequest& request);
};

/// The single-process dispatcher: bridges frames into a ServeEngine, which
/// must outlive this object. Handler ids index `handlers` (an empty table
/// exposes only id 0, the engine's default handler); out-of-range ids get a
/// kRejected response without touching the engine.
class EngineDispatcher final : public RequestDispatcher {
 public:
  using HandlerTable = std::vector<serve::RequestHandler>;

  EngineDispatcher(serve::ServeEngine& engine, HandlerTable handlers);

  void dispatch(RequestFrame frame, RespondFn respond) override;
  void drain() override;
  [[nodiscard]] StatsFrame stats() override;

 private:
  serve::ServeEngine* engine_;
  const HandlerTable handlers_;  ///< immutable after construction
};

}  // namespace autopn::net
