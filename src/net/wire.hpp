#pragma once
// Wire protocol of the network front-end — a length-prefixed binary framing
// that puts the serving engine's admission semantics on the wire. Every
// frame is
//
//   u32 length | u8 type | type-specific body
//
// with all integers little-endian and `length` counting everything after the
// length field itself (so a reader needs exactly 4 bytes to learn how much
// more to wait for). A connection opens with a Hello/HelloAck handshake that
// pins magic and protocol version; after that the client streams Request
// frames (handler id + tenant id + opaque payload + relative deadline) and
// the server answers each with exactly one Response frame carrying the
// engine's verdict. Load shedding is a first-class protocol outcome, not an
// error: a `kShed` response carries the admission queue's clamped retry-after
// hint so backoff policy lives at the protocol edge, where ContTune-style
// distributed tuning needs it.
//
// FrameDecoder is a push parser: feed() it whatever the socket produced —
// single bytes, half frames, three frames at once — and poll next() for
// completed frames. Malformed input (oversized length, unknown type, a
// truncated body) moves the decoder into a sticky error state; the caller
// closes the connection, it never "resyncs" into attacker-chosen framing.
//
// Versioning: `version` is the major protocol revision and must match
// exactly; `minor` rides the handshake as an optional trailing field and is
// negotiated down to min(client, server). Minor 0 is the original v1.0
// layout — a minor-0 Hello/HelloAck is encoded WITHOUT the trailing field,
// byte-identical to v1.0, so a legacy peer (which rejects bodies with
// trailing bytes) still interoperates: the responder mirrors the
// requester's form. Constructs introduced by minor 1 — the Response
// shed-origin byte and the Stats frame pair — are only ever sent on a
// connection whose negotiated minor is >= 1. Minor 2 adds the Membership
// control frame pair (runtime shard admit/retire/status for the router
// tier) and a trailing shed-detail byte on Response that splits router
// sheds into dead-backend vs transient; a minor-1 response is encoded
// byte-identically to before, so every older peer interoperates.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

namespace autopn::net {

inline constexpr std::uint32_t kWireMagic = 0x41504E31;  // "APN1"
inline constexpr std::uint16_t kWireVersion = 1;
/// Highest protocol minor this implementation speaks (see file comment for
/// the negotiation rules; 0 encodes the legacy v1.0 frame layout).
inline constexpr std::uint16_t kWireMinor = 2;
/// Hard cap on `length`; a header announcing more is a protocol error (and
/// the decoder's defense against unbounded buffering on garbage input).
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;
/// Largest request/response payload the protocol admits (fits kMaxFrameBytes
/// with every fixed field).
inline constexpr std::uint32_t kMaxPayloadBytes = kMaxFrameBytes - 64;

enum class FrameType : std::uint8_t {
  kHello = 1,     ///< client → server: magic + version [+ minor]
  kHelloAck = 2,  ///< server → client: magic + version [+ minor] + accept flag
  kRequest = 3,
  kResponse = 4,
  kStatsRequest = 5,   ///< minor >= 1: ask the server for its KPI aggregates
  kStatsResponse = 6,  ///< minor >= 1: the server's StatsFrame
  kMembershipRequest = 7,   ///< minor >= 2: router-tier admit/retire/status
  kMembershipResponse = 8,  ///< minor >= 2: the router's MembershipFrame
};

/// Engine verdict carried by a Response frame.
enum class Status : std::uint8_t {
  kOk = 0,
  kShed = 1,      ///< admission refused; retry_after_us is the backoff hint
  kExpired = 2,   ///< deadline passed before/while executing
  kFailed = 3,    ///< handler threw
  kRejected = 4,  ///< unknown handler id — never reached the queue
  kClosing = 5,   ///< server shutting down; admission closed
};

[[nodiscard]] std::string to_string(Status status);

/// Which tier shed a request — carried on the wire (minor >= 1) so clients
/// and the CLI SLO table can tell a router-level shed (backend down, drain,
/// migration overflow) from a shard's own admission shedding.
enum class ShedOrigin : std::uint8_t {
  kShard = 0,   ///< the serving engine's admission queue refused it
  kRouter = 1,  ///< a routing tier answered without reaching a shard
};

[[nodiscard]] std::string to_string(ShedOrigin origin);

/// Why a router-origin response shed (minor >= 2; absent means kNone). The
/// split netload's shed@rtr column needs: a shard declared dead (placement
/// should converge away from it) versus a transient blip (connection died
/// mid-request, drain, migration overflow) that retrying rides out.
enum class ShedDetail : std::uint8_t {
  kNone = 0,         ///< not a backend-health shed (or pre-minor-2 peer)
  kTransient = 1,    ///< momentary: disconnect mid-flight, hold overflow
  kDeadBackend = 2,  ///< the target shard exhausted its redial budget / dead
};

[[nodiscard]] std::string to_string(ShedDetail detail);

struct HelloFrame {
  std::uint32_t magic = kWireMagic;
  std::uint16_t version = kWireVersion;
  /// Highest minor the sender speaks; 0 selects the legacy short encoding.
  std::uint16_t minor = kWireMinor;
};

struct HelloAckFrame {
  std::uint32_t magic = kWireMagic;
  std::uint16_t version = kWireVersion;
  /// Negotiated minor = min(hello.minor, responder's kWireMinor); 0 selects
  /// the legacy short encoding so a v1.0 requester can parse the ack.
  std::uint16_t minor = kWireMinor;
  bool ok = true;
};

struct RequestFrame {
  std::uint64_t request_id = 0;  ///< client-chosen; echoed in the response
  std::uint16_t handler_id = 0;
  std::uint16_t tenant_id = 0;
  /// Client deadline relative to server receipt, microseconds; 0 = none.
  std::uint64_t deadline_us = 0;
  std::vector<std::uint8_t> payload;
};

struct ResponseFrame {
  std::uint64_t request_id = 0;
  Status status = Status::kOk;
  /// Server-side enqueue→completion latency, microseconds (reported for
  /// every engine outcome; 0 for requests that never reached the queue).
  std::uint64_t server_latency_us = 0;
  /// Backoff hint, microseconds (nonzero only for kShed/kClosing).
  std::uint64_t retry_after_us = 0;
  std::vector<std::uint8_t> payload;
  /// Which tier produced a kShed/kClosing verdict. On the wire only when
  /// the connection negotiated minor >= 1; absent means kShard.
  ShedOrigin shed_origin = ShedOrigin::kShard;
  /// Health classification of a router-origin shed. On the wire only when
  /// the connection negotiated minor >= 2; absent means kNone.
  ShedDetail shed_detail = ShedDetail::kNone;
};

/// One per-tenant latency slot in a StatsFrame (the serving engine's 8
/// hashed KPI slots — `tenant` is the slot index, not a raw tenant id).
struct TenantStat {
  std::uint16_t tenant = 0;
  std::uint64_t count = 0;
  std::uint64_t p99_us = 0;
};

/// Aggregated server KPIs answered to a kStatsRequest (minor >= 1). This is
/// what a router polls per shard to drive latency-aware rebalancing: the
/// engine-level counters, the cumulative latency percentiles, and the
/// per-tenant latency slots.
struct StatsFrame {
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t expired = 0;
  std::uint64_t failed = 0;
  std::uint32_t queue_depth = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p95_us = 0;
  std::uint64_t p99_us = 0;
  /// The clamped backoff a request shed right now would be hinted.
  std::uint64_t retry_after_us = 0;
  std::vector<TenantStat> tenants;
};

// ---- Membership control (minor >= 2) -----------------------------------
// The router tier's runtime admit/retire/status channel. A control client
// (`autopn router-ctl`) sends one MembershipRequest; the router answers with
// a MembershipFrame carrying the member table, the ordered membership log
// (placement is a pure function of the shard set, so the log is all two
// routers need to agree), and the rebalancer's latest scale recommendation.
// A non-router dispatcher answers ok=false ("membership not supported").

enum class MembershipOp : std::uint8_t {
  kAdd = 0,     ///< admit shard_id at host:port (enters probation first)
  kRemove = 1,  ///< retire shard_id: migrate tenants off, then close links
  kStatus = 2,  ///< read-only member table + log + scale recommendation
};

[[nodiscard]] std::string to_string(MembershipOp op);

/// Cap on the host string in membership frames (a dotted quad or short
/// hostname; anything longer is a protocol error, not forward compat).
inline constexpr std::size_t kMaxHostBytes = 255;

struct MembershipRequest {
  MembershipOp op = MembershipOp::kStatus;
  std::uint32_t shard_id = 0;  ///< kRemove target; kAdd desired id
  std::string host;            ///< kAdd only
  std::uint16_t port = 0;      ///< kAdd only
};

/// One member row in a membership response. `health` and the counters are
/// router-side observability (router::HealthState values on the wire as raw
/// bytes so the net layer stays independent of src/router).
struct MemberInfo {
  std::uint32_t shard_id = 0;
  std::string host;
  std::uint16_t port = 0;
  std::uint8_t health = 0;  ///< router::HealthState as a raw byte
  bool in_ring = false;     ///< currently owns ring arcs (placement input)
  std::uint64_t redial_attempts = 0;  ///< total failed dials across outages
  std::uint64_t reconnects = 0;
  std::string last_error;  ///< most recent dial failure, empty when none
};

/// One ordered membership-log entry (`event` is a router::MembershipEvent
/// raw byte). Replaying the kJoin/kEvict/kRetire entries in seq order
/// reconstructs the ring membership exactly.
struct MembershipLogEntry {
  std::uint64_t seq = 0;
  std::uint8_t event = 0;
  std::uint32_t shard_id = 0;
};

struct MembershipFrame {
  bool ok = true;
  std::string message;
  std::uint8_t scale_action = 0;   ///< router::ScaleAction as a raw byte
  std::uint32_t scale_shard = 0;   ///< shard id for a remove recommendation
  std::vector<MemberInfo> members;
  std::vector<MembershipLogEntry> log;
};

// ---- Encoding ----------------------------------------------------------
// Each encoder appends one complete frame (length prefix included) to `out`
// so callers can batch several frames into a single write buffer.

void encode_hello(std::vector<std::uint8_t>& out, const HelloFrame& f = {});
void encode_hello_ack(std::vector<std::uint8_t>& out, const HelloAckFrame& f);
void encode_request(std::vector<std::uint8_t>& out, const RequestFrame& f);
/// `wire_minor` is the connection's negotiated minor: the shed-origin byte
/// is appended only for minor >= 1 (a minor-0 peer parses exactly v1.0).
void encode_response(std::vector<std::uint8_t>& out, const ResponseFrame& f,
                     std::uint16_t wire_minor = kWireMinor);
void encode_stats_request(std::vector<std::uint8_t>& out);
void encode_stats(std::vector<std::uint8_t>& out, const StatsFrame& f);
void encode_membership_request(std::vector<std::uint8_t>& out,
                               const MembershipRequest& f);
void encode_membership(std::vector<std::uint8_t>& out,
                       const MembershipFrame& f);

// ---- Decoding ----------------------------------------------------------

/// One completed frame: the type tag plus its raw body (everything after the
/// type byte). parse_*() turns bodies into typed frames.
struct Frame {
  FrameType type = FrameType::kHello;
  std::vector<std::uint8_t> body;
};

/// Body parsers. std::nullopt = truncated/overlong body (protocol error —
/// the body length must match the fields exactly; trailing garbage is not
/// forward-compatibility, it is corruption under a length-prefixed framing).
[[nodiscard]] std::optional<HelloFrame> parse_hello(
    const std::vector<std::uint8_t>& body);
[[nodiscard]] std::optional<HelloAckFrame> parse_hello_ack(
    const std::vector<std::uint8_t>& body);
[[nodiscard]] std::optional<RequestFrame> parse_request(
    const std::vector<std::uint8_t>& body);
[[nodiscard]] std::optional<ResponseFrame> parse_response(
    const std::vector<std::uint8_t>& body);
[[nodiscard]] std::optional<StatsFrame> parse_stats(
    const std::vector<std::uint8_t>& body);
[[nodiscard]] std::optional<MembershipRequest> parse_membership_request(
    const std::vector<std::uint8_t>& body);
[[nodiscard]] std::optional<MembershipFrame> parse_membership(
    const std::vector<std::uint8_t>& body);

class FrameDecoder {
 public:
  /// Appends raw socket bytes. Accepts any fragmentation, including one byte
  /// at a time. No-op once the decoder is in the error state.
  void feed(const std::uint8_t* data, std::size_t size);

  /// Pops the next completed frame, if any. Sets the error state (and
  /// returns std::nullopt) on an oversized length, a zero-length frame, or
  /// an unknown type tag.
  [[nodiscard]] std::optional<Frame> next();

  /// Sticky: a decoder that has seen malformed input stays failed until
  /// reset(); the connection should be closed.
  [[nodiscard]] bool failed() const noexcept { return failed_; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  /// Bytes buffered but not yet consumed as frames (partial frame in flight).
  [[nodiscard]] std::size_t buffered() const noexcept { return buffer_.size(); }

  void reset();

 private:
  void fail(std::string reason);

  std::deque<std::uint8_t> buffer_;
  bool failed_ = false;
  std::string error_;
};

}  // namespace autopn::net
