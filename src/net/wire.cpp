#include "net/wire.hpp"

#include <algorithm>
#include <cstring>

namespace autopn::net {

namespace {

// Little-endian primitive writers/readers. The cursor-based reader returns
// false on underflow so parse_*() can reject truncated bodies uniformly.

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

struct Reader {
  const std::vector<std::uint8_t>& data;
  std::size_t pos = 0;

  [[nodiscard]] bool get_u8(std::uint8_t& v) {
    if (pos + 1 > data.size()) return false;
    v = data[pos++];
    return true;
  }
  [[nodiscard]] bool get_u16(std::uint16_t& v) {
    if (pos + 2 > data.size()) return false;
    v = static_cast<std::uint16_t>(data[pos] |
                                   (static_cast<std::uint16_t>(data[pos + 1]) << 8));
    pos += 2;
    return true;
  }
  [[nodiscard]] bool get_u32(std::uint32_t& v) {
    if (pos + 4 > data.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos += 4;
    return true;
  }
  [[nodiscard]] bool get_u64(std::uint64_t& v) {
    if (pos + 8 > data.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos += 8;
    return true;
  }
  [[nodiscard]] bool get_bytes(std::vector<std::uint8_t>& out, std::size_t n) {
    if (pos + n > data.size()) return false;
    out.assign(data.begin() + static_cast<std::ptrdiff_t>(pos),
               data.begin() + static_cast<std::ptrdiff_t>(pos + n));
    pos += n;
    return true;
  }
  /// A valid body is consumed exactly; leftovers mean a length/field
  /// mismatch and the whole frame is rejected.
  [[nodiscard]] bool exhausted() const { return pos == data.size(); }
};

/// Length-prefixed (u16) short string; membership frames carry hosts and
/// human-readable errors. Encoding truncates at `cap`, parsing rejects
/// anything longer — the cap is part of the wire contract.
void put_string(std::vector<std::uint8_t>& out, const std::string& s,
                std::size_t cap) {
  const std::size_t n = std::min(s.size(), cap);
  put_u16(out, static_cast<std::uint16_t>(n));
  out.insert(out.end(), s.begin(), s.begin() + static_cast<std::ptrdiff_t>(n));
}

[[nodiscard]] bool get_string(Reader& r, std::string& out, std::size_t cap) {
  std::uint16_t n = 0;
  if (!r.get_u16(n) || n > cap) return false;
  std::vector<std::uint8_t> bytes;
  if (!r.get_bytes(bytes, n)) return false;
  out.assign(bytes.begin(), bytes.end());
  return true;
}

/// Writes `length | type` with the length back-patched once the body is in.
class FrameBuilder {
 public:
  FrameBuilder(std::vector<std::uint8_t>& out, FrameType type) : out_(out) {
    length_at_ = out_.size();
    put_u32(out_, 0);  // patched in finish()
    put_u8(out_, static_cast<std::uint8_t>(type));
  }

  void finish() {
    const std::size_t after_length = length_at_ + 4;
    const auto length = static_cast<std::uint32_t>(out_.size() - after_length);
    for (int i = 0; i < 4; ++i) {
      out_[length_at_ + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(length >> (8 * i));
    }
  }

 private:
  std::vector<std::uint8_t>& out_;
  std::size_t length_at_;
};

}  // namespace

std::string to_string(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kShed: return "shed";
    case Status::kExpired: return "expired";
    case Status::kFailed: return "failed";
    case Status::kRejected: return "rejected";
    case Status::kClosing: return "closing";
  }
  return "unknown";
}

std::string to_string(ShedOrigin origin) {
  switch (origin) {
    case ShedOrigin::kShard: return "shard";
    case ShedOrigin::kRouter: return "router";
  }
  return "unknown";
}

std::string to_string(ShedDetail detail) {
  switch (detail) {
    case ShedDetail::kNone: return "none";
    case ShedDetail::kTransient: return "transient";
    case ShedDetail::kDeadBackend: return "dead-backend";
  }
  return "unknown";
}

std::string to_string(MembershipOp op) {
  switch (op) {
    case MembershipOp::kAdd: return "add";
    case MembershipOp::kRemove: return "remove";
    case MembershipOp::kStatus: return "status";
  }
  return "unknown";
}

void encode_hello(std::vector<std::uint8_t>& out, const HelloFrame& f) {
  FrameBuilder b{out, FrameType::kHello};
  put_u32(out, f.magic);
  put_u16(out, f.version);
  if (f.minor >= 1) put_u16(out, f.minor);  // minor 0 = legacy short form
  b.finish();
}

void encode_hello_ack(std::vector<std::uint8_t>& out, const HelloAckFrame& f) {
  FrameBuilder b{out, FrameType::kHelloAck};
  put_u32(out, f.magic);
  put_u16(out, f.version);
  if (f.minor >= 1) put_u16(out, f.minor);  // minor 0 = legacy short form
  put_u8(out, f.ok ? 1 : 0);
  b.finish();
}

void encode_request(std::vector<std::uint8_t>& out, const RequestFrame& f) {
  FrameBuilder b{out, FrameType::kRequest};
  put_u64(out, f.request_id);
  put_u16(out, f.handler_id);
  put_u16(out, f.tenant_id);
  put_u64(out, f.deadline_us);
  put_u32(out, static_cast<std::uint32_t>(f.payload.size()));
  out.insert(out.end(), f.payload.begin(), f.payload.end());
  b.finish();
}

void encode_response(std::vector<std::uint8_t>& out, const ResponseFrame& f,
                     std::uint16_t wire_minor) {
  FrameBuilder b{out, FrameType::kResponse};
  put_u64(out, f.request_id);
  put_u8(out, static_cast<std::uint8_t>(f.status));
  put_u64(out, f.server_latency_us);
  put_u64(out, f.retry_after_us);
  put_u32(out, static_cast<std::uint32_t>(f.payload.size()));
  out.insert(out.end(), f.payload.begin(), f.payload.end());
  if (wire_minor >= 1) put_u8(out, static_cast<std::uint8_t>(f.shed_origin));
  if (wire_minor >= 2) put_u8(out, static_cast<std::uint8_t>(f.shed_detail));
  b.finish();
}

void encode_stats_request(std::vector<std::uint8_t>& out) {
  FrameBuilder b{out, FrameType::kStatsRequest};
  put_u8(out, 0);  // reserved; a zero-length frame is a decoder error
  b.finish();
}

void encode_stats(std::vector<std::uint8_t>& out, const StatsFrame& f) {
  FrameBuilder b{out, FrameType::kStatsResponse};
  put_u64(out, f.offered);
  put_u64(out, f.completed);
  put_u64(out, f.shed);
  put_u64(out, f.expired);
  put_u64(out, f.failed);
  put_u32(out, f.queue_depth);
  put_u64(out, f.p50_us);
  put_u64(out, f.p95_us);
  put_u64(out, f.p99_us);
  put_u64(out, f.retry_after_us);
  put_u16(out, static_cast<std::uint16_t>(f.tenants.size()));
  for (const TenantStat& t : f.tenants) {
    put_u16(out, t.tenant);
    put_u64(out, t.count);
    put_u64(out, t.p99_us);
  }
  b.finish();
}

namespace {

/// Cap on the human-readable message in a membership response.
constexpr std::size_t kMaxMessageBytes = 1024;

}  // namespace

void encode_membership_request(std::vector<std::uint8_t>& out,
                               const MembershipRequest& f) {
  FrameBuilder b{out, FrameType::kMembershipRequest};
  put_u8(out, static_cast<std::uint8_t>(f.op));
  put_u32(out, f.shard_id);
  put_string(out, f.host, kMaxHostBytes);
  put_u16(out, f.port);
  b.finish();
}

void encode_membership(std::vector<std::uint8_t>& out,
                       const MembershipFrame& f) {
  FrameBuilder b{out, FrameType::kMembershipResponse};
  put_u8(out, f.ok ? 1 : 0);
  put_string(out, f.message, kMaxMessageBytes);
  put_u8(out, f.scale_action);
  put_u32(out, f.scale_shard);
  put_u16(out, static_cast<std::uint16_t>(f.members.size()));
  for (const MemberInfo& m : f.members) {
    put_u32(out, m.shard_id);
    put_string(out, m.host, kMaxHostBytes);
    put_u16(out, m.port);
    put_u8(out, m.health);
    put_u8(out, m.in_ring ? 1 : 0);
    put_u64(out, m.redial_attempts);
    put_u64(out, m.reconnects);
    put_string(out, m.last_error, kMaxMessageBytes);
  }
  put_u16(out, static_cast<std::uint16_t>(f.log.size()));
  for (const MembershipLogEntry& e : f.log) {
    put_u64(out, e.seq);
    put_u8(out, e.event);
    put_u32(out, e.shard_id);
  }
  b.finish();
}

std::optional<MembershipRequest> parse_membership_request(
    const std::vector<std::uint8_t>& body) {
  Reader r{body};
  MembershipRequest f;
  std::uint8_t op = 0;
  if (!r.get_u8(op) || op > static_cast<std::uint8_t>(MembershipOp::kStatus) ||
      !r.get_u32(f.shard_id) || !get_string(r, f.host, kMaxHostBytes) ||
      !r.get_u16(f.port) || !r.exhausted()) {
    return std::nullopt;
  }
  f.op = static_cast<MembershipOp>(op);
  return f;
}

std::optional<MembershipFrame> parse_membership(
    const std::vector<std::uint8_t>& body) {
  Reader r{body};
  MembershipFrame f;
  std::uint8_t ok = 0;
  std::uint16_t n_members = 0;
  if (!r.get_u8(ok) || !get_string(r, f.message, kMaxMessageBytes) ||
      !r.get_u8(f.scale_action) || !r.get_u32(f.scale_shard) ||
      !r.get_u16(n_members)) {
    return std::nullopt;
  }
  f.ok = ok != 0;
  f.members.resize(n_members);
  for (MemberInfo& m : f.members) {
    std::uint8_t in_ring = 0;
    if (!r.get_u32(m.shard_id) || !get_string(r, m.host, kMaxHostBytes) ||
        !r.get_u16(m.port) || !r.get_u8(m.health) || !r.get_u8(in_ring) ||
        !r.get_u64(m.redial_attempts) || !r.get_u64(m.reconnects) ||
        !get_string(r, m.last_error, kMaxMessageBytes)) {
      return std::nullopt;
    }
    m.in_ring = in_ring != 0;
  }
  std::uint16_t n_log = 0;
  if (!r.get_u16(n_log)) return std::nullopt;
  f.log.resize(n_log);
  for (MembershipLogEntry& e : f.log) {
    if (!r.get_u64(e.seq) || !r.get_u8(e.event) || !r.get_u32(e.shard_id)) {
      return std::nullopt;
    }
  }
  if (!r.exhausted()) return std::nullopt;
  return f;
}

std::optional<HelloFrame> parse_hello(const std::vector<std::uint8_t>& body) {
  Reader r{body};
  HelloFrame f;
  if (!r.get_u32(f.magic) || !r.get_u16(f.version)) return std::nullopt;
  if (r.exhausted()) {
    f.minor = 0;  // legacy v1.0 short form
    return f;
  }
  if (!r.get_u16(f.minor) || f.minor == 0 || !r.exhausted()) {
    return std::nullopt;  // long form must carry a nonzero minor, exactly
  }
  return f;
}

std::optional<HelloAckFrame> parse_hello_ack(
    const std::vector<std::uint8_t>& body) {
  Reader r{body};
  HelloAckFrame f;
  std::uint8_t ok = 0;
  if (!r.get_u32(f.magic) || !r.get_u16(f.version)) return std::nullopt;
  if (body.size() == 7) {  // legacy v1.0 short form: no minor field
    f.minor = 0;
  } else if (!r.get_u16(f.minor) || f.minor == 0) {
    return std::nullopt;
  }
  if (!r.get_u8(ok) || !r.exhausted()) return std::nullopt;
  f.ok = ok != 0;
  return f;
}

std::optional<RequestFrame> parse_request(const std::vector<std::uint8_t>& body) {
  Reader r{body};
  RequestFrame f;
  std::uint32_t payload_len = 0;
  if (!r.get_u64(f.request_id) || !r.get_u16(f.handler_id) ||
      !r.get_u16(f.tenant_id) || !r.get_u64(f.deadline_us) ||
      !r.get_u32(payload_len) || payload_len > kMaxPayloadBytes ||
      !r.get_bytes(f.payload, payload_len) || !r.exhausted()) {
    return std::nullopt;
  }
  return f;
}

std::optional<ResponseFrame> parse_response(
    const std::vector<std::uint8_t>& body) {
  Reader r{body};
  ResponseFrame f;
  std::uint8_t status = 0;
  std::uint32_t payload_len = 0;
  if (!r.get_u64(f.request_id) || !r.get_u8(status) ||
      status > static_cast<std::uint8_t>(Status::kClosing) ||
      !r.get_u64(f.server_latency_us) || !r.get_u64(f.retry_after_us) ||
      !r.get_u32(payload_len) || payload_len > kMaxPayloadBytes ||
      !r.get_bytes(f.payload, payload_len)) {
    return std::nullopt;
  }
  f.status = static_cast<Status>(status);
  if (r.exhausted()) return f;  // legacy v1.0 form: no shed-origin byte
  std::uint8_t origin = 0;
  if (!r.get_u8(origin) ||
      origin > static_cast<std::uint8_t>(ShedOrigin::kRouter)) {
    return std::nullopt;
  }
  f.shed_origin = static_cast<ShedOrigin>(origin);
  if (r.exhausted()) return f;  // minor-1 form: no shed-detail byte
  std::uint8_t detail = 0;
  if (!r.get_u8(detail) ||
      detail > static_cast<std::uint8_t>(ShedDetail::kDeadBackend) ||
      !r.exhausted()) {
    return std::nullopt;
  }
  f.shed_detail = static_cast<ShedDetail>(detail);
  return f;
}

std::optional<StatsFrame> parse_stats(const std::vector<std::uint8_t>& body) {
  Reader r{body};
  StatsFrame f;
  std::uint16_t n_tenants = 0;
  if (!r.get_u64(f.offered) || !r.get_u64(f.completed) || !r.get_u64(f.shed) ||
      !r.get_u64(f.expired) || !r.get_u64(f.failed) ||
      !r.get_u32(f.queue_depth) || !r.get_u64(f.p50_us) ||
      !r.get_u64(f.p95_us) || !r.get_u64(f.p99_us) ||
      !r.get_u64(f.retry_after_us) || !r.get_u16(n_tenants)) {
    return std::nullopt;
  }
  f.tenants.resize(n_tenants);
  for (TenantStat& t : f.tenants) {
    if (!r.get_u16(t.tenant) || !r.get_u64(t.count) || !r.get_u64(t.p99_us)) {
      return std::nullopt;
    }
  }
  if (!r.exhausted()) return std::nullopt;
  return f;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  if (failed_) return;
  buffer_.insert(buffer_.end(), data, data + size);
}

std::optional<Frame> FrameDecoder::next() {
  if (failed_ || buffer_.size() < 4) return std::nullopt;
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(buffer_[static_cast<std::size_t>(i)])
              << (8 * i);
  }
  if (length == 0) {
    fail("zero-length frame");
    return std::nullopt;
  }
  if (length > kMaxFrameBytes) {
    fail("frame length " + std::to_string(length) + " exceeds cap");
    return std::nullopt;
  }
  if (buffer_.size() < 4 + static_cast<std::size_t>(length)) {
    return std::nullopt;  // partial frame — wait for more bytes
  }
  const std::uint8_t type = buffer_[4];
  if (type < static_cast<std::uint8_t>(FrameType::kHello) ||
      type > static_cast<std::uint8_t>(FrameType::kMembershipResponse)) {
    fail("unknown frame type " + std::to_string(type));
    return std::nullopt;
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.body.assign(buffer_.begin() + 5,
                    buffer_.begin() + 4 + static_cast<std::ptrdiff_t>(length));
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + 4 + static_cast<std::ptrdiff_t>(length));
  return frame;
}

void FrameDecoder::reset() {
  buffer_.clear();
  failed_ = false;
  error_.clear();
}

void FrameDecoder::fail(std::string reason) {
  failed_ = true;
  error_ = std::move(reason);
  buffer_.clear();
}

}  // namespace autopn::net
