#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace autopn::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error{errno, std::generic_category(), what};
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) throw_errno("eventfd");
  timer_fd_ = ::timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC | TFD_NONBLOCK);
  if (timer_fd_ < 0) throw_errno("timerfd_create");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    throw_errno("epoll_ctl(wake)");
  }
  ev.data.fd = timer_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, timer_fd_, &ev) != 0) {
    throw_errno("epoll_ctl(timer)");
  }
}

EventLoop::~EventLoop() {
  if (timer_fd_ >= 0) ::close(timer_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

double EventLoop::monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool EventLoop::in_loop_thread() const {
  return loop_thread_.load(std::memory_order_acquire) ==
         std::this_thread::get_id();
}

void EventLoop::run() {
  loop_thread_.store(std::this_thread::get_id(), std::memory_order_release);
  std::array<epoll_event, 64> events{};
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[static_cast<std::size_t>(i)].data.fd;
      const std::uint32_t mask = events[static_cast<std::size_t>(i)].events;
      if (fd == wake_fd_) {
        drain_eventfd();
        run_posted_tasks();
      } else if (fd == timer_fd_) {
        std::uint64_t expirations = 0;
        while (::read(timer_fd_, &expirations, sizeof expirations) > 0) {
        }
        fire_due_timers();
      } else {
        // Look the handler up per event: an earlier handler in this batch
        // may have removed this fd, and holding a shared_ptr copy keeps the
        // closure alive even if the callback removes itself.
        auto it = handlers_.find(fd);
        if (it == handlers_.end()) continue;
        const std::shared_ptr<FdHandler> handler = it->second;
        (*handler)(mask);
      }
    }
  }
  // Drain the final batch of posted tasks so a stop() issued right after a
  // post() never strands work (drain() relies on this ordering too).
  run_posted_tasks();
  loop_thread_.store(std::thread::id{}, std::memory_order_release);
}

void EventLoop::stop() {
  stopping_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void EventLoop::post(Task task) {
  {
    std::scoped_lock lock{task_mutex_};
    tasks_.push_back(std::move(task));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void EventLoop::drain() {
  std::promise<void> done;
  std::future<void> future = done.get_future();
  post([&done] { done.set_value(); });
  future.wait();
}

void EventLoop::run_posted_tasks() {
  std::vector<Task> batch;
  {
    std::scoped_lock lock{task_mutex_};
    batch.swap(tasks_);
  }
  for (Task& task : batch) task();
}

void EventLoop::drain_eventfd() {
  std::uint64_t value = 0;
  while (::read(wake_fd_, &value, sizeof value) > 0) {
  }
}

void EventLoop::add_fd(int fd, std::uint32_t events, FdHandler handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw_errno("epoll_ctl(add)");
  }
  handlers_[fd] = std::make_shared<FdHandler>(std::move(handler));
}

void EventLoop::modify_fd(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw_errno("epoll_ctl(mod)");
  }
}

void EventLoop::remove_fd(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

EventLoop::TimerId EventLoop::add_timer(double delay_seconds, Task task) {
  const TimerId id = next_timer_id_++;
  timer_tasks_.emplace(id, std::move(task));
  timers_.push(Timer{monotonic_seconds() + std::max(delay_seconds, 0.0), id});
  rearm_timerfd();
  return id;
}

void EventLoop::cancel_timer(TimerId id) {
  timer_tasks_.erase(id);  // the heap entry is skipped lazily when it pops
}

void EventLoop::fire_due_timers() {
  const double now = monotonic_seconds();
  while (!timers_.empty() && timers_.top().deadline <= now) {
    const TimerId id = timers_.top().id;
    timers_.pop();
    auto it = timer_tasks_.find(id);
    if (it == timer_tasks_.end()) continue;  // cancelled
    Task task = std::move(it->second);
    timer_tasks_.erase(it);
    task();
  }
  rearm_timerfd();
}

void EventLoop::rearm_timerfd() {
  // Drop cancelled heads so a cancelled earliest timer cannot postpone a
  // live later one.
  while (!timers_.empty() && !timer_tasks_.contains(timers_.top().id)) {
    timers_.pop();
  }
  itimerspec spec{};
  if (!timers_.empty()) {
    const double delta =
        std::max(timers_.top().deadline - monotonic_seconds(), 1e-9);
    spec.it_value.tv_sec = static_cast<time_t>(delta);
    spec.it_value.tv_nsec =
        static_cast<long>((delta - static_cast<double>(spec.it_value.tv_sec)) *
                          1e9);
    if (spec.it_value.tv_sec == 0 && spec.it_value.tv_nsec == 0) {
      spec.it_value.tv_nsec = 1;
    }
  }
  if (::timerfd_settime(timer_fd_, 0, &spec, nullptr) != 0) {
    throw_errno("timerfd_settime");
  }
}

}  // namespace autopn::net
