// Unit and property tests for the xoshiro256** RNG wrapper.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/stats.hpp"

namespace autopn::util {
namespace {

TEST(Rng, Deterministic) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int differing = 0;
  for (int i = 0; i < 64; ++i) differing += (a() != b());
  EXPECT_GT(differing, 60);
}

TEST(Rng, ReseedResets) {
  Rng a{7};
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, UniformInRange) {
  Rng rng{3};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng{4};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit
}

TEST(Rng, UniformIndexSingleton) {
  Rng rng{5};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, UniformIndexUnbiasedApprox) {
  Rng rng{6};
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 10.0, 5.0 * std::sqrt(n / 10.0));
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng{8};
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.gaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, GaussianScaled) {
  Rng rng{9};
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.gaussian(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng{10};
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
  EXPECT_GT(stats.min(), 0.0);
}

TEST(Rng, BernoulliEdges) {
  Rng rng{11};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng{12};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng{13};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng{14};
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
}

TEST(Rng, SplitIndependentStreams) {
  Rng parent{15};
  Rng child = parent.split();
  // The child stream should not replay the parent stream.
  Rng parent_copy{15};
  (void)parent_copy();  // consume the value that seeded the child
  int same = 0;
  for (int i = 0; i < 32; ++i) same += (child() == parent_copy());
  EXPECT_LT(same, 4);
}

TEST(Rng, SplitMix64KnownValues) {
  // Reference values from the splitmix64 reference implementation with
  // initial state 1234567.
  std::uint64_t state = 1234567;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_NE(first, second);
  EXPECT_EQ(state, 1234567ULL + 2 * 0x9e3779b97f4a7c15ULL);
}

TEST(Rng, PickCoversAllElements) {
  Rng rng{16};
  const std::vector<int> items{10, 20, 30};
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.pick(items));
  EXPECT_EQ(seen.size(), 3u);
}

}  // namespace
}  // namespace autopn::util
