// Wire-protocol framing tests: encode/decode round-trips across random
// payload sizes (including empty and maximum), split-delivery decoding one
// byte at a time, and rejection of truncated, oversized, zero-length,
// unknown-type, and magic/version-mismatched frames — the decoder's sticky
// error state is the connection-close contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/wire.hpp"
#include "util/rng.hpp"

namespace autopn::net {
namespace {

std::vector<std::uint8_t> random_payload(util::Rng& rng, std::size_t size) {
  std::vector<std::uint8_t> payload(size);
  for (auto& b : payload) {
    b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return payload;
}

/// Feeds `bytes` to a fresh decoder in one call and returns all frames.
std::vector<Frame> decode_all(const std::vector<std::uint8_t>& bytes) {
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  std::vector<Frame> frames;
  while (auto frame = decoder.next()) frames.push_back(std::move(*frame));
  EXPECT_FALSE(decoder.failed()) << decoder.error();
  return frames;
}

TEST(NetWire, HelloRoundTrip) {
  std::vector<std::uint8_t> bytes;
  encode_hello(bytes);
  const auto frames = decode_all(bytes);
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_EQ(frames[0].type, FrameType::kHello);
  const auto hello = parse_hello(frames[0].body);
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->magic, kWireMagic);
  EXPECT_EQ(hello->version, kWireVersion);
}

TEST(NetWire, HelloAckRoundTripBothVerdicts) {
  for (const bool ok : {true, false}) {
    std::vector<std::uint8_t> bytes;
    HelloAckFrame ack;
    ack.ok = ok;
    encode_hello_ack(bytes, ack);
    const auto frames = decode_all(bytes);
    ASSERT_EQ(frames.size(), 1u);
    const auto parsed = parse_hello_ack(frames[0].body);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->ok, ok);
  }
}

TEST(NetWire, RequestRoundTripPropertyOverPayloadSizes) {
  util::Rng rng{42};
  // Boundary sizes plus a random spread; kMaxPayloadBytes must round-trip.
  std::vector<std::size_t> sizes{0, 1, 2, 255, 256, 65536, kMaxPayloadBytes};
  for (int i = 0; i < 20; ++i) {
    sizes.push_back(static_cast<std::size_t>(rng.uniform_int(0, 100000)));
  }
  for (const std::size_t size : sizes) {
    RequestFrame frame;
    frame.request_id = rng.uniform_int(0, 1 << 30);
    frame.handler_id = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
    frame.tenant_id = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
    frame.deadline_us = rng.uniform_int(0, 1 << 30);
    frame.payload = random_payload(rng, size);

    std::vector<std::uint8_t> bytes;
    encode_request(bytes, frame);
    const auto frames = decode_all(bytes);
    ASSERT_EQ(frames.size(), 1u) << "payload size " << size;
    ASSERT_EQ(frames[0].type, FrameType::kRequest);
    const auto parsed = parse_request(frames[0].body);
    ASSERT_TRUE(parsed.has_value()) << "payload size " << size;
    EXPECT_EQ(parsed->request_id, frame.request_id);
    EXPECT_EQ(parsed->handler_id, frame.handler_id);
    EXPECT_EQ(parsed->tenant_id, frame.tenant_id);
    EXPECT_EQ(parsed->deadline_us, frame.deadline_us);
    EXPECT_EQ(parsed->payload, frame.payload);
  }
}

TEST(NetWire, ResponseRoundTripAllStatuses) {
  util::Rng rng{7};
  for (const Status status :
       {Status::kOk, Status::kShed, Status::kExpired, Status::kFailed,
        Status::kRejected, Status::kClosing}) {
    ResponseFrame frame;
    frame.request_id = rng.uniform_int(1, 1 << 20);
    frame.status = status;
    frame.server_latency_us = rng.uniform_int(0, 1 << 20);
    frame.retry_after_us = rng.uniform_int(0, 5000000);
    frame.payload = random_payload(rng, rng.uniform_int(0, 512));

    std::vector<std::uint8_t> bytes;
    encode_response(bytes, frame);
    const auto frames = decode_all(bytes);
    ASSERT_EQ(frames.size(), 1u);
    ASSERT_EQ(frames[0].type, FrameType::kResponse);
    const auto parsed = parse_response(frames[0].body);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->request_id, frame.request_id);
    EXPECT_EQ(parsed->status, frame.status);
    EXPECT_EQ(parsed->server_latency_us, frame.server_latency_us);
    EXPECT_EQ(parsed->retry_after_us, frame.retry_after_us);
    EXPECT_EQ(parsed->payload, frame.payload);
  }
}

TEST(NetWire, ByteAtATimeSplitDelivery) {
  // Three heterogeneous frames in one stream, delivered one byte at a time:
  // the decoder must produce exactly the same frames as a single feed.
  util::Rng rng{99};
  std::vector<std::uint8_t> stream;
  encode_hello(stream);
  RequestFrame request;
  request.request_id = 17;
  request.payload = random_payload(rng, 333);
  encode_request(stream, request);
  ResponseFrame response;
  response.request_id = 17;
  response.status = Status::kShed;
  response.retry_after_us = 2500;
  encode_response(stream, response);

  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (const std::uint8_t byte : stream) {
    decoder.feed(&byte, 1);
    while (auto frame = decoder.next()) frames.push_back(std::move(*frame));
  }
  ASSERT_FALSE(decoder.failed()) << decoder.error();
  EXPECT_EQ(decoder.buffered(), 0u);
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].type, FrameType::kHello);
  const auto req = parse_request(frames[1].body);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->payload, request.payload);
  const auto resp = parse_response(frames[2].body);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->retry_after_us, 2500u);
}

TEST(NetWire, TruncatedFrameStaysPendingNotError) {
  // A partial frame is not an error — the decoder waits for the rest.
  std::vector<std::uint8_t> bytes;
  RequestFrame frame;
  frame.payload = std::vector<std::uint8_t>(100, 0x55);
  encode_request(bytes, frame);
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size() - 1);  // hold back the last byte
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_FALSE(decoder.failed());
  EXPECT_GT(decoder.buffered(), 0u);
  // Delivering the final byte completes it.
  decoder.feed(&bytes.back(), 1);
  EXPECT_TRUE(decoder.next().has_value());
}

TEST(NetWire, TruncatedBodyRejectedByParser) {
  std::vector<std::uint8_t> bytes;
  encode_request(bytes, RequestFrame{});
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  frame->body.pop_back();  // now one byte short of the fixed fields
  EXPECT_FALSE(parse_request(frame->body).has_value());
  // Trailing garbage is equally a protocol error under length framing.
  frame->body.push_back(0);
  frame->body.push_back(0xde);
  EXPECT_FALSE(parse_request(frame->body).has_value());
}

TEST(NetWire, BadMagicAndBadVersionRejected) {
  std::vector<std::uint8_t> bytes;
  encode_hello(bytes);
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());

  auto corrupt_magic = frame->body;
  corrupt_magic[0] ^= 0xff;
  const auto bad_magic = parse_hello(corrupt_magic);
  // The parser yields the frame; the handshake layer rejects the mismatch.
  ASSERT_TRUE(bad_magic.has_value());
  EXPECT_NE(bad_magic->magic, kWireMagic);

  auto corrupt_version = frame->body;
  corrupt_version[4] ^= 0xff;
  const auto bad_version = parse_hello(corrupt_version);
  ASSERT_TRUE(bad_version.has_value());
  EXPECT_NE(bad_version->version, kWireVersion);
}

TEST(NetWire, OversizedLengthIsStickyError) {
  FrameDecoder decoder;
  const std::uint32_t huge = kMaxFrameBytes + 1;
  std::uint8_t header[4];
  header[0] = static_cast<std::uint8_t>(huge & 0xff);
  header[1] = static_cast<std::uint8_t>((huge >> 8) & 0xff);
  header[2] = static_cast<std::uint8_t>((huge >> 16) & 0xff);
  header[3] = static_cast<std::uint8_t>((huge >> 24) & 0xff);
  decoder.feed(header, sizeof header);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.failed());
  // Sticky: valid bytes after the fault are ignored until reset().
  std::vector<std::uint8_t> valid;
  encode_hello(valid);
  decoder.feed(valid.data(), valid.size());
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.failed());
  decoder.reset();
  EXPECT_FALSE(decoder.failed());
}

TEST(NetWire, MinorNegotiationLegacyShortFormsRoundTrip) {
  // A minor-0 Hello/HelloAck must be byte-identical to the v1.0 layout:
  // 6-byte hello body, 7-byte ack body, and the parser reports minor 0.
  {
    std::vector<std::uint8_t> bytes;
    HelloFrame hello;
    hello.minor = 0;
    encode_hello(bytes, hello);
    ASSERT_EQ(bytes.size(), 4u + 1u + 6u);  // length | type | magic+version
    const auto frames = decode_all(bytes);
    ASSERT_EQ(frames.size(), 1u);
    const auto parsed = parse_hello(frames[0].body);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->minor, 0u);
    EXPECT_EQ(parsed->magic, kWireMagic);
  }
  {
    std::vector<std::uint8_t> bytes;
    HelloAckFrame ack;
    ack.minor = 0;
    ack.ok = true;
    encode_hello_ack(bytes, ack);
    ASSERT_EQ(bytes.size(), 4u + 1u + 7u);  // magic+version+ok
    const auto frames = decode_all(bytes);
    ASSERT_EQ(frames.size(), 1u);
    const auto parsed = parse_hello_ack(frames[0].body);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->minor, 0u);
    EXPECT_TRUE(parsed->ok);
  }
}

TEST(NetWire, MinorNegotiationModernFormsCarryMinor) {
  {
    std::vector<std::uint8_t> bytes;
    encode_hello(bytes);  // defaults: minor = kWireMinor
    const auto frames = decode_all(bytes);
    ASSERT_EQ(frames.size(), 1u);
    const auto parsed = parse_hello(frames[0].body);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->minor, kWireMinor);
  }
  {
    std::vector<std::uint8_t> bytes;
    HelloAckFrame ack;
    ack.minor = kWireMinor;
    ack.ok = false;
    encode_hello_ack(bytes, ack);
    const auto frames = decode_all(bytes);
    ASSERT_EQ(frames.size(), 1u);
    const auto parsed = parse_hello_ack(frames[0].body);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->minor, kWireMinor);
    EXPECT_FALSE(parsed->ok);
  }
  // A long-form hello claiming minor 0 is malformed: minor 0 must use the
  // short encoding (otherwise two encodings would alias the same meaning).
  std::vector<std::uint8_t> bytes;
  encode_hello(bytes);
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  frame->body[6] = 0;
  frame->body[7] = 0;  // minor field → 0
  EXPECT_FALSE(parse_hello(frame->body).has_value());
}

TEST(NetWire, ResponseShedOriginMinorGated) {
  ResponseFrame frame;
  frame.request_id = 9;
  frame.status = Status::kShed;
  frame.retry_after_us = 1000;
  frame.shed_origin = ShedOrigin::kRouter;

  // minor 0 encoding: no trailing byte, parser defaults origin to kShard —
  // exactly what a v1.0 peer would see and assume.
  std::vector<std::uint8_t> legacy;
  encode_response(legacy, frame, /*wire_minor=*/0);
  auto legacy_frames = decode_all(legacy);
  ASSERT_EQ(legacy_frames.size(), 1u);
  const auto legacy_parsed = parse_response(legacy_frames[0].body);
  ASSERT_TRUE(legacy_parsed.has_value());
  EXPECT_EQ(legacy_parsed->shed_origin, ShedOrigin::kShard);

  // minor 1 encoding: exactly one byte longer, origin round-trips.
  std::vector<std::uint8_t> modern;
  encode_response(modern, frame, /*wire_minor=*/1);
  ASSERT_EQ(modern.size(), legacy.size() + 1);
  auto modern_frames = decode_all(modern);
  ASSERT_EQ(modern_frames.size(), 1u);
  const auto modern_parsed = parse_response(modern_frames[0].body);
  ASSERT_TRUE(modern_parsed.has_value());
  EXPECT_EQ(modern_parsed->shed_origin, ShedOrigin::kRouter);
  EXPECT_EQ(modern_parsed->retry_after_us, 1000u);

  // An out-of-range origin byte is corruption, not forward compatibility.
  auto corrupt = modern_frames[0].body;
  corrupt.back() = 0x7f;
  EXPECT_FALSE(parse_response(corrupt).has_value());
}

TEST(NetWire, StatsFrameRoundTrip) {
  StatsFrame stats;
  stats.offered = 1000;
  stats.completed = 900;
  stats.shed = 80;
  stats.expired = 15;
  stats.failed = 5;
  stats.queue_depth = 42;
  stats.p50_us = 100;
  stats.p95_us = 900;
  stats.p99_us = 2500;
  stats.retry_after_us = 12000;
  for (std::uint16_t slot = 0; slot < 8; ++slot) {
    stats.tenants.push_back(TenantStat{slot, 100u + slot, 1000u * slot});
  }

  std::vector<std::uint8_t> bytes;
  encode_stats_request(bytes);
  encode_stats(bytes, stats);
  const auto frames = decode_all(bytes);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kStatsRequest);
  ASSERT_EQ(frames[1].type, FrameType::kStatsResponse);
  const auto parsed = parse_stats(frames[1].body);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->offered, stats.offered);
  EXPECT_EQ(parsed->completed, stats.completed);
  EXPECT_EQ(parsed->shed, stats.shed);
  EXPECT_EQ(parsed->expired, stats.expired);
  EXPECT_EQ(parsed->failed, stats.failed);
  EXPECT_EQ(parsed->queue_depth, stats.queue_depth);
  EXPECT_EQ(parsed->p99_us, stats.p99_us);
  EXPECT_EQ(parsed->retry_after_us, stats.retry_after_us);
  ASSERT_EQ(parsed->tenants.size(), 8u);
  EXPECT_EQ(parsed->tenants[3].tenant, 3u);
  EXPECT_EQ(parsed->tenants[3].count, 103u);
  EXPECT_EQ(parsed->tenants[3].p99_us, 3000u);

  // Truncating inside the tenant list is rejected.
  auto truncated = frames[1].body;
  truncated.pop_back();
  EXPECT_FALSE(parse_stats(truncated).has_value());
}

TEST(NetWire, ResponseShedDetailMinorGated) {
  ResponseFrame frame;
  frame.request_id = 11;
  frame.status = Status::kShed;
  frame.shed_origin = ShedOrigin::kRouter;
  frame.shed_detail = ShedDetail::kDeadBackend;

  // minor 1: origin byte but no detail byte; the parser defaults detail to
  // kNone — a minor-1 peer sees exactly the v1.1 layout.
  std::vector<std::uint8_t> v1;
  encode_response(v1, frame, /*wire_minor=*/1);
  auto v1_frames = decode_all(v1);
  ASSERT_EQ(v1_frames.size(), 1u);
  const auto v1_parsed = parse_response(v1_frames[0].body);
  ASSERT_TRUE(v1_parsed.has_value());
  EXPECT_EQ(v1_parsed->shed_origin, ShedOrigin::kRouter);
  EXPECT_EQ(v1_parsed->shed_detail, ShedDetail::kNone);

  // minor 2: exactly one byte longer, detail round-trips.
  std::vector<std::uint8_t> v2;
  encode_response(v2, frame, /*wire_minor=*/2);
  ASSERT_EQ(v2.size(), v1.size() + 1);
  auto v2_frames = decode_all(v2);
  ASSERT_EQ(v2_frames.size(), 1u);
  const auto v2_parsed = parse_response(v2_frames[0].body);
  ASSERT_TRUE(v2_parsed.has_value());
  EXPECT_EQ(v2_parsed->shed_detail, ShedDetail::kDeadBackend);

  // An out-of-range detail byte is corruption, not forward compatibility.
  auto corrupt = v2_frames[0].body;
  corrupt.back() = 0x7f;
  EXPECT_FALSE(parse_response(corrupt).has_value());
}

TEST(NetWire, MembershipRequestRoundTripAllOps) {
  for (const MembershipOp op :
       {MembershipOp::kAdd, MembershipOp::kRemove, MembershipOp::kStatus}) {
    MembershipRequest req;
    req.op = op;
    req.shard_id = 7;
    req.host = op == MembershipOp::kAdd ? "127.0.0.1" : "";
    req.port = op == MembershipOp::kAdd ? 9444 : 0;

    std::vector<std::uint8_t> bytes;
    encode_membership_request(bytes, req);
    const auto frames = decode_all(bytes);
    ASSERT_EQ(frames.size(), 1u);
    ASSERT_EQ(frames[0].type, FrameType::kMembershipRequest);
    const auto parsed = parse_membership_request(frames[0].body);
    ASSERT_TRUE(parsed.has_value()) << to_string(op);
    EXPECT_EQ(parsed->op, op);
    EXPECT_EQ(parsed->shard_id, 7u);
    EXPECT_EQ(parsed->host, req.host);
    EXPECT_EQ(parsed->port, req.port);

    auto truncated = frames[0].body;
    truncated.pop_back();
    EXPECT_FALSE(parse_membership_request(truncated).has_value());
  }
}

TEST(NetWire, MembershipFrameRoundTrip) {
  MembershipFrame reply;
  reply.ok = true;
  reply.message = "shard 2 admitted; joins the ring after probation";
  reply.scale_action = 2;  // router::ScaleAction::kRemove as a raw byte
  reply.scale_shard = 1;
  MemberInfo m;
  m.shard_id = 2;
  m.host = "127.0.0.1";
  m.port = 9001;
  m.health = 3;  // router::HealthState::kProbation as a raw byte
  m.in_ring = false;
  m.redial_attempts = 5;
  m.reconnects = 1;
  m.last_error = "connect: refused";
  reply.members.push_back(m);
  reply.log.push_back({1, 0, 2});  // seq 1: admit(2)
  reply.log.push_back({2, 3, 2});  // seq 2: join(2)

  std::vector<std::uint8_t> bytes;
  encode_membership(bytes, reply);
  const auto frames = decode_all(bytes);
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_EQ(frames[0].type, FrameType::kMembershipResponse);
  const auto parsed = parse_membership(frames[0].body);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ok, reply.ok);
  EXPECT_EQ(parsed->message, reply.message);
  EXPECT_EQ(parsed->scale_action, reply.scale_action);
  EXPECT_EQ(parsed->scale_shard, reply.scale_shard);
  ASSERT_EQ(parsed->members.size(), 1u);
  EXPECT_EQ(parsed->members[0].shard_id, 2u);
  EXPECT_EQ(parsed->members[0].host, "127.0.0.1");
  EXPECT_EQ(parsed->members[0].port, 9001u);
  EXPECT_EQ(parsed->members[0].health, 3u);
  EXPECT_FALSE(parsed->members[0].in_ring);
  EXPECT_EQ(parsed->members[0].redial_attempts, 5u);
  EXPECT_EQ(parsed->members[0].reconnects, 1u);
  EXPECT_EQ(parsed->members[0].last_error, "connect: refused");
  ASSERT_EQ(parsed->log.size(), 2u);
  EXPECT_EQ(parsed->log[0].seq, 1u);
  EXPECT_EQ(parsed->log[0].event, 0u);
  EXPECT_EQ(parsed->log[1].event, 3u);
  EXPECT_EQ(parsed->log[1].shard_id, 2u);

  // Truncating inside the member table or the log is rejected.
  auto truncated = frames[0].body;
  truncated.pop_back();
  EXPECT_FALSE(parse_membership(truncated).has_value());

  // Encoding truncates an over-cap host; a length prefix above the cap on
  // the wire is a protocol error (kMaxHostBytes is part of the contract).
  MembershipRequest oversized;
  oversized.op = MembershipOp::kAdd;
  oversized.host = std::string(kMaxHostBytes + 40, 'x');
  std::vector<std::uint8_t> bad;
  encode_membership_request(bad, oversized);
  const auto bad_frames = decode_all(bad);
  ASSERT_EQ(bad_frames.size(), 1u);
  const auto truncated_host = parse_membership_request(bad_frames[0].body);
  ASSERT_TRUE(truncated_host.has_value());
  EXPECT_EQ(truncated_host->host.size(), kMaxHostBytes);
  // Hand-patch the host length prefix (body offset 5: after op + shard_id)
  // past the cap: the parser must reject it.
  auto patched = bad_frames[0].body;
  const std::uint16_t over = kMaxHostBytes + 1;
  patched[5] = static_cast<std::uint8_t>(over & 0xff);
  patched[6] = static_cast<std::uint8_t>(over >> 8);
  EXPECT_FALSE(parse_membership_request(patched).has_value());
}

TEST(NetWire, ZeroLengthAndUnknownTypeRejected) {
  {
    FrameDecoder decoder;
    const std::uint8_t zero[4] = {0, 0, 0, 0};
    decoder.feed(zero, sizeof zero);
    EXPECT_FALSE(decoder.next().has_value());
    EXPECT_TRUE(decoder.failed());
  }
  {
    FrameDecoder decoder;
    // length = 1, type = 0x7f (unknown)
    const std::uint8_t unknown[5] = {1, 0, 0, 0, 0x7f};
    decoder.feed(unknown, sizeof unknown);
    EXPECT_FALSE(decoder.next().has_value());
    EXPECT_TRUE(decoder.failed());
  }
}

}  // namespace
}  // namespace autopn::net
