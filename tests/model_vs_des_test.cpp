// Cross-validation property test: the compositional model's closed-loop
// throughput must track the discrete-event simulator over the canned
// moderate-contention workloads — same configuration ordering (rank
// agreement) and absolute values within a stated factor. The DES is the
// high-fidelity substitute (DESIGN.md §3); the model is its cheap analytical
// shadow, so agreement here is what licenses using model predictions as a
// warm-start prior and veto oracle. Extremes (array-90 style) are excluded
// deliberately: the two substitutes model the starvation regime differently
// (see bench/des_vs_analytical).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "model/compose.hpp"
#include "sim/des.hpp"
#include "sim/workload.hpp"

namespace autopn::model {
namespace {

constexpr int kCores = 48;

/// Spearman rank correlation of two equally-long value lists.
double spearman(const std::vector<double>& a, const std::vector<double>& b) {
  auto ranks = [](const std::vector<double>& v) {
    std::vector<std::size_t> order(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t x, std::size_t y) { return v[x] < v[y]; });
    std::vector<double> rank(v.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      rank[order[i]] = static_cast<double>(i);
    }
    return rank;
  };
  const auto ra = ranks(a);
  const auto rb = ranks(b);
  const auto n = static_cast<double>(a.size());
  double d2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d2 += (ra[i] - rb[i]) * (ra[i] - rb[i]);
  }
  return 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
}

CompositionalModel model_for(const std::string& workload) {
  PipelineParams p;
  p.workload = sim::workload_by_name(workload);
  p.cores = kCores;
  p.workers = kCores;  // no worker clamp: pure surface comparison
  return CompositionalModel{p};
}

class ModelVsDes : public ::testing::TestWithParam<const char*> {};

TEST_P(ModelVsDes, ClosedThroughputTracksTheSimulator) {
  const std::vector<opt::Config> probes{
      {1, 1}, {1, 8}, {2, 9}, {4, 4}, {8, 2}, {12, 4},
  };
  const CompositionalModel model = model_for(GetParam());
  const sim::DesParams des_params =
      sim::des_from_workload(model.params().workload, kCores);

  std::vector<double> model_thr;
  std::vector<double> des_thr;
  for (const opt::Config& cfg : probes) {
    model_thr.push_back(model.closed_throughput(cfg));
    sim::DesSimulator des{des_params, cfg, 101};
    des_thr.push_back(des.run(1.0).throughput());
  }

  // Shape: the model orders configurations like the simulator does.
  EXPECT_GE(spearman(model_thr, des_thr), 0.5) << GetParam();

  // Level: every probe within a stated factor (the substitutes are built
  // from different mechanisms; factor-level agreement is the contract).
  for (std::size_t i = 0; i < probes.size(); ++i) {
    ASSERT_GT(des_thr[i], 0.0) << probes[i].to_string();
    const double ratio = model_thr[i] / des_thr[i];
    EXPECT_GE(ratio, 0.25) << GetParam() << " @ " << probes[i].to_string();
    EXPECT_LE(ratio, 4.0) << GetParam() << " @ " << probes[i].to_string();
  }
}

TEST_P(ModelVsDes, AbortRateAgreesInDirection) {
  // Contention direction check: where the model predicts materially more
  // top-level aborts at (12,1) than at (2,1), the simulator must too.
  const CompositionalModel model = model_for(GetParam());
  const sim::DesParams des_params =
      sim::des_from_workload(model.params().workload, kCores);
  const double low = model.predict({2, 1}, 1e9).abort_rate;
  const double high = model.predict({12, 1}, 1e9).abort_rate;
  if (high < low + 0.05) GTEST_SKIP() << "model predicts no contention slope";

  sim::DesSimulator des_low{des_params, {2, 1}, 7};
  sim::DesSimulator des_high{des_params, {12, 1}, 7};
  EXPECT_GT(des_high.run(1.0).abort_rate(), des_low.run(1.0).abort_rate());
}

INSTANTIATE_TEST_SUITE_P(CannedWorkloads, ModelVsDes,
                         ::testing::Values("tpcc-med", "tpcc-low",
                                           "vacation-med"),
                         [](const auto& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

}  // namespace
}  // namespace autopn::model
