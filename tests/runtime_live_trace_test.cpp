// Tests for the live-surface recorder (runtime <-> sim bridge).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "runtime/live_trace.hpp"
#include "workloads/array_bench.hpp"

namespace autopn::runtime {
namespace {

TEST(LiveTrace, RecordsEveryConfiguration) {
  stm::StmConfig cfg;
  cfg.max_cores = 3;
  cfg.pool_threads = 2;
  cfg.initial_top = 1;
  cfg.initial_children = 1;
  stm::Stm stm{cfg};

  workloads::ArrayConfig acfg;
  acfg.array_size = 64;
  acfg.update_fraction = 0.1;
  workloads::ArrayBenchmark bench{stm, acfg};

  std::atomic<bool> stop{false};
  std::vector<std::jthread> drivers;
  for (int d = 0; d < 2; ++d) {
    drivers.emplace_back([&, d] {
      util::Rng rng{static_cast<std::uint64_t>(5 + d)};
      while (!stop.load(std::memory_order_relaxed)) bench.run_one(rng);
    });
  }

  const opt::ConfigSpace space{3};  // (1,1),(1,2),(1,3),(2,1),(3,1) = 5 configs
  util::WallClock clock;
  LiveTraceParams params;
  params.runs = 2;
  params.window_seconds = 0.03;
  params.settle_seconds = 0.005;
  const sim::SurfaceTrace trace =
      record_live_surface(stm, space, "test-array", clock, params);
  stop.store(true);
  drivers.clear();

  EXPECT_EQ(trace.size(), space.size());
  EXPECT_EQ(trace.workload(), "test-array");
  EXPECT_EQ(trace.cores(), 3);
  for (const opt::Config& c : space.all()) {
    EXPECT_TRUE(trace.contains(c));
    EXPECT_GT(trace.mean(c), 0.0) << c.to_string();
  }
  // A live-measured optimum exists and is a valid configuration.
  EXPECT_TRUE(space.valid(trace.optimum().config));
}

TEST(LiveTrace, RestoresNothingButLeavesLastConfigApplied) {
  // The recorder sweeps configurations; afterwards the last applied one is
  // in force (callers re-apply their choice via the actuator).
  stm::StmConfig cfg;
  cfg.max_cores = 2;
  cfg.pool_threads = 1;
  stm::Stm stm{cfg};

  workloads::ArrayConfig acfg;
  acfg.array_size = 16;
  workloads::ArrayBenchmark bench{stm, acfg};
  std::atomic<bool> stop{false};
  std::jthread driver{[&] {
    util::Rng rng{9};
    while (!stop.load(std::memory_order_relaxed)) bench.run_one(rng);
  }};

  const opt::ConfigSpace space{2};  // (1,1),(1,2),(2,1)
  util::WallClock clock;
  LiveTraceParams params;
  params.runs = 1;
  params.window_seconds = 0.02;
  params.settle_seconds = 0.002;
  (void)record_live_surface(stm, space, "x", clock, params);
  stop.store(true);
  driver.join();

  const opt::Config last = space.at(space.size() - 1);
  EXPECT_EQ(static_cast<int>(stm.top_limit()), last.t);
  EXPECT_EQ(static_cast<int>(stm.child_limit()), last.c);
}

}  // namespace
}  // namespace autopn::runtime
