// Regression tests locking in the calibration facts the reproduction rests
// on (paper §VII-A / Fig 1). If a change to the surface model or workload
// presets drifts these, the figure benches silently stop matching the paper
// — these tests make that drift loud.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "opt/config_space.hpp"
#include "sim/surface.hpp"
#include "sim/workload.hpp"
#include "util/stats.hpp"

namespace autopn {
namespace {

struct Fixture {
  opt::ConfigSpace space{48};
  std::vector<sim::SurfaceModel> models;
  std::vector<sim::SurfaceModel::Optimum> optima;

  Fixture() {
    for (const auto& params : sim::paper_workloads()) {
      models.emplace_back(params, 48);
    }
    for (const auto& model : models) optima.push_back(model.optimum(space));
  }

  [[nodiscard]] opt::Config best_static() const {
    opt::Config best{1, 1};
    double best_avg = 1e18;
    for (const opt::Config& cfg : space.all()) {
      double total = 0.0;
      for (std::size_t w = 0; w < models.size(); ++w) {
        total += (optima[w].throughput - models[w].mean_throughput(cfg)) /
                 optima[w].throughput;
      }
      if (total < best_avg) {
        best_avg = total;
        best = cfg;
      }
    }
    return best;
  }
};

TEST(PaperFacts, SearchSpaceHas198Configurations) {
  EXPECT_EQ(opt::ConfigSpace{48}.size(), 198u);
}

TEST(PaperFacts, BestStaticConfigurationIs24x2) {
  Fixture fx;
  EXPECT_EQ(fx.best_static(), (opt::Config{24, 2}));
}

TEST(PaperFacts, BestStaticDfoStatisticsMatchPaperBand) {
  // Paper: avg 21.8%, p90 slowdown 2.56x, worst 3.22x on Array-high.
  Fixture fx;
  const opt::Config static_best = fx.best_static();
  std::vector<double> dfos;
  std::vector<double> slowdowns;
  std::size_t worst_index = 0;
  double worst = 0.0;
  for (std::size_t w = 0; w < fx.models.size(); ++w) {
    const double thr = fx.models[w].mean_throughput(static_best);
    dfos.push_back((fx.optima[w].throughput - thr) / fx.optima[w].throughput);
    const double slowdown = fx.optima[w].throughput / thr;
    slowdowns.push_back(slowdown);
    if (slowdown > worst) {
      worst = slowdown;
      worst_index = w;
    }
  }
  EXPECT_GT(util::mean_of(dfos), 0.15);
  EXPECT_LT(util::mean_of(dfos), 0.32);
  EXPECT_GT(util::percentile(slowdowns, 0.90), 2.0);
  EXPECT_LT(util::percentile(slowdowns, 0.90), 3.4);
  EXPECT_GT(worst, 2.8);
  EXPECT_LT(worst, 4.2);
  // The worst case is the high-contention Array workload, as in the paper.
  EXPECT_EQ(fx.models[worst_index].params().name, "array-90");
}

TEST(PaperFacts, TpccMedPeaksAt20x2Around9x) {
  Fixture fx;
  const auto& tpcc = fx.models[1];  // tpcc-med
  ASSERT_EQ(tpcc.params().name, "tpcc-med");
  const auto optimum = tpcc.optimum(fx.space);
  EXPECT_EQ(optimum.config, (opt::Config{20, 2}));
  const double ratio =
      optimum.throughput / tpcc.mean_throughput(opt::Config{1, 1});
  EXPECT_GT(ratio, 8.0);
  EXPECT_LT(ratio, 12.0);
}

TEST(PaperFacts, Fig1bCrossPessimum) {
  Fixture fx;
  const auto& scan = fx.models[6];       // array-0
  const auto& contended = fx.models[9];  // array-90
  ASSERT_EQ(scan.params().name, "array-0");
  ASSERT_EQ(contended.params().name, "array-90");
  // Each workload's optimum is far from optimal on the other.
  EXPECT_GT(contended.distance_from_optimum(fx.space, scan.optimum(fx.space).config),
            0.5);
  EXPECT_GT(scan.distance_from_optimum(fx.space, contended.optimum(fx.space).config),
            0.5);
}

TEST(PaperFacts, EveryWorkloadScalesPastSequential) {
  // Obs. of §VI: "PN-TM workloads are expected to scale, so the throughput in
  // the (1,1) configuration is typically much lower than in the optimal one".
  Fixture fx;
  for (std::size_t w = 0; w < fx.models.size(); ++w) {
    const double seq = fx.models[w].mean_throughput(opt::Config{1, 1});
    EXPECT_GT(fx.optima[w].throughput, 2.0 * seq)
        << fx.models[w].params().name;
  }
}

TEST(PaperFacts, TpccMedMostConfigsAtLeast2xBelowOptimum) {
  // Fig 1a: the best configuration is 2-3x better than most others.
  Fixture fx;
  const auto& tpcc = fx.models[1];
  const auto optimum = tpcc.optimum(fx.space);
  std::size_t below_2x = 0;
  for (const opt::Config& cfg : fx.space.all()) {
    if (optimum.throughput / tpcc.mean_throughput(cfg) >= 2.0) ++below_2x;
  }
  EXPECT_GT(below_2x, fx.space.size() / 2);
}

}  // namespace
}  // namespace autopn
