// Tests for the kNN surrogate regressor.
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "ml/knn.hpp"
#include "util/rng.hpp"

namespace autopn::ml {
namespace {

Dataset grid_data(std::size_t n, std::uint64_t seed) {
  util::Rng rng{seed};
  Dataset data{2};
  for (std::size_t i = 0; i < n; ++i) {
    const std::array<double, 2> x{rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)};
    data.add(x, 3.0 * x[0] + x[1]);
  }
  return data;
}

TEST(Knn, EmptyDataIsZero) {
  Dataset data{2};
  KnnRegressor knn{data, 3};
  const auto p = knn.predict(std::array{1.0, 2.0});
  EXPECT_DOUBLE_EQ(p.mean, 0.0);
  EXPECT_DOUBLE_EQ(p.variance, 0.0);
}

TEST(Knn, ExactHitReturnsNeighborValue) {
  Dataset data{2};
  data.add(std::array{1.0, 1.0}, 5.0);
  KnnRegressor knn{data, 1};
  EXPECT_NEAR(knn.predict(std::array{1.0, 1.0}).mean, 5.0, 1e-12);
}

TEST(Knn, InterpolatesSmoothFunction) {
  const Dataset data = grid_data(500, 1);
  KnnRegressor knn{data, 5};
  for (double t : {2.0, 5.0, 8.0}) {
    for (double c : {2.0, 5.0, 8.0}) {
      const double truth = 3.0 * t + c;
      EXPECT_NEAR(knn.predict(std::array{t, c}).mean, truth, 2.5)
          << "at (" << t << "," << c << ")";
    }
  }
}

TEST(Knn, KClampedToDatasetSize) {
  Dataset data{1};
  data.add(std::array{0.0}, 1.0);
  data.add(std::array{1.0}, 3.0);
  KnnRegressor knn{data, 50};
  // Uses both points; weighted mean between 1 and 3.
  const double mean = knn.predict(std::array{0.5}).mean;
  EXPECT_GT(mean, 1.0);
  EXPECT_LT(mean, 3.0);
}

TEST(Knn, VarianceGrowsWithDistance) {
  Dataset data{1};
  for (double x : {0.0, 1.0, 2.0}) data.add(std::array{x}, 10.0);
  KnnRegressor knn{data, 3};
  const double near_var = knn.predict(std::array{1.0}).variance;
  const double far_var = knn.predict(std::array{50.0}).variance;
  EXPECT_GT(far_var, near_var);
}

TEST(Knn, DisagreementContributesVariance) {
  Dataset data{1};
  data.add(std::array{1.0}, 0.0);
  data.add(std::array{1.1}, 100.0);  // close points, wildly different labels
  KnnRegressor knn{data, 2};
  EXPECT_GT(knn.predict(std::array{1.05}).variance, 100.0);
}

TEST(Knn, StddevIsSqrtVariance) {
  const Dataset data = grid_data(50, 2);
  KnnRegressor knn{data, 3};
  const auto p = knn.predict(std::array{4.0, 4.0});
  EXPECT_NEAR(p.stddev(), std::sqrt(p.variance), 1e-12);
}

TEST(Knn, MinimumKIsOne) {
  const Dataset data = grid_data(10, 3);
  KnnRegressor knn{data, 0};
  EXPECT_EQ(knn.k(), 1u);
  (void)knn.predict(std::array{1.0, 1.0});  // must not crash
}

}  // namespace
}  // namespace autopn::ml
