// Model-checks the SnapshotRegistry publish-and-validate handshake
// (snapshot_registry.hpp header comment) through the sync seam. The registry
// is built with ONE slot so the second reader takes the mutex-protected
// overflow path; a committer advances the clock between min_active() scans.
// Every interleaving must uphold:
//
//   * visibility  — once acquire() returns, min_active() never exceeds that
//     handle's snapshot (the pruning-race guarantee of DESIGN.md §8 bug 2),
//     including across the slot CAS / clock re-validate retry window;
//   * monotonicity — successive min_active() calls never go backwards
//     (pruning bounds only rise, so pruning only ever keeps more, never
//     frees a body late registrations still need);
//   * quiescence  — with every handle released, min_active() returns the
//     clock and active_count() is zero.
//
// Exhaustive success proves the seq_cst annotations on the handshake are
// sufficient; the header's informal total-order argument is checked, not
// trusted.

#include <cstdint>
#include <memory>

#include "mc/explore.hpp"
#include "mc_harness.hpp"
#include "stm/snapshot_registry.hpp"
#include "util/sync.hpp"

namespace {

namespace mc = autopn::mc;
namespace stm = autopn::stm;
namespace sync = autopn::sync;

struct World {
  sync::Atomic<std::uint64_t> clock{0};
  stm::SnapshotRegistry registry{clock, 1};  // 1 slot: 2nd reader overflows
};

void reader(const std::shared_ptr<World>& w) {
  auto handle = w->registry.acquire();
  MC_ASSERT(w->registry.min_active() <= handle.snapshot(),
            "a completed registration is visible to every pruning bound");
}

void committer(const std::shared_ptr<World>& w) {
  const std::uint64_t before = w->registry.min_active();
  // Commit publish: the clock only ever advances via seq_cst publishes
  // (commit_manager.cpp), which the handshake's total-order argument relies
  // on.
  w->clock.fetch_add(1, std::memory_order_seq_cst);
  const std::uint64_t after = w->registry.min_active();
  MC_ASSERT(before <= after, "the pruning bound is monotone");
}

void body() {
  auto w = std::make_shared<World>();
  mc::Thread r1{[w] { reader(w); }};
  mc::Thread r2{[w] { reader(w); }};
  mc::Thread c{[w] { committer(w); }};
  r1.join();
  r2.join();
  c.join();

  MC_ASSERT(w->registry.min_active() ==
                w->clock.load(std::memory_order_seq_cst),
            "quiescent pruning bound equals the clock");
  MC_ASSERT(w->registry.active_count() == 0 &&
                w->registry.overflow_count() == 0,
            "every registration released its slot or overflow entry");
}

}  // namespace

int main(int argc, char** argv) {
  return autopn::mc_harness::run(argc, argv, "mc_snapshot_registry", body);
}
