// Tests for the KPI monitoring policies (paper §VI) driven in virtual time.
#include <gtest/gtest.h>

#include <cmath>

#include "runtime/cusum.hpp"
#include "runtime/monitor.hpp"
#include "sim/event_sim.hpp"
#include "sim/workload.hpp"

namespace autopn::runtime {
namespace {

/// Commit source ticking at a perfectly regular rate.
std::function<double()> regular_stream(double rate, double start = 0.0) {
  auto t = std::make_shared<double>(start);
  return [t, rate] {
    *t += 1.0 / rate;
    return *t;
  };
}

TEST(FixedTime, CompletesAtWindowEnd) {
  FixedTimePolicy policy{1.0};
  const auto m = run_window_on_stream(policy, regular_stream(100.0), 0.0);
  EXPECT_NEAR(m.elapsed, 1.0, 0.02);
  EXPECT_NEAR(m.throughput, 100.0, 2.0);
  EXPECT_GE(m.commits, 99u);
}

TEST(FixedTime, LowRateWindowHasFewCommits) {
  FixedTimePolicy policy{0.5};
  const auto m = run_window_on_stream(policy, regular_stream(2.0), 0.0);
  EXPECT_LE(m.commits, 1u);  // 2/s for 0.5s
}

TEST(FixedCommits, WaitsForExactCount) {
  FixedCommitsPolicy policy{30};
  const auto m = run_window_on_stream(policy, regular_stream(10.0), 0.0);
  EXPECT_EQ(m.commits, 30u);
  EXPECT_NEAR(m.elapsed, 3.0, 0.01);
  EXPECT_FALSE(m.timed_out);
}

TEST(FixedCommits, NoTimeoutEvenWhenSlow) {
  // The vulnerability the paper calls out: a "bad" configuration committing
  // at a crawl keeps the monitor stuck for commits/rate seconds.
  FixedCommitsPolicy policy{30};
  const auto m = run_window_on_stream(policy, regular_stream(0.1), 0.0);
  EXPECT_NEAR(m.elapsed, 300.0, 1.0);  // 30 commits at 0.1/s
}

TEST(CvAdaptive, StabilizesOnSteadyStream) {
  const sim::SurfaceModel model{sim::workload_by_name("vacation-med"), 48};
  sim::CommitStream stream{model, opt::Config{8, 2}, 21};
  CvAdaptivePolicy policy{0.10, 5};
  const auto m =
      run_window_on_stream(policy, [&] { return stream.next_commit(); }, 0.0);
  EXPECT_FALSE(m.timed_out);
  EXPECT_GE(m.commits, 5u);
  const double truth = model.mean_throughput(opt::Config{8, 2});
  EXPECT_NEAR(m.throughput, truth, truth * 0.5);
}

TEST(CvAdaptive, TighterThresholdNeedsMoreCommits) {
  const sim::SurfaceModel model{sim::workload_by_name("tpcc-med"), 48};
  std::size_t commits_loose = 0;
  std::size_t commits_tight = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    sim::CommitStream s1{model, opt::Config{8, 2}, seed};
    sim::CommitStream s2{model, opt::Config{8, 2}, seed};
    CvAdaptivePolicy loose{0.20, 5};
    CvAdaptivePolicy tight{0.02, 5};
    commits_loose +=
        run_window_on_stream(loose, [&] { return s1.next_commit(); }, 0.0).commits;
    commits_tight +=
        run_window_on_stream(tight, [&] { return s2.next_commit(); }, 0.0).commits;
  }
  EXPECT_LT(commits_loose, commits_tight);
}

TEST(CvAdaptive, TimesOutOnStarvingConfiguration) {
  // Reference throughput 100/s with the default 3x scale => timeout after
  // 30ms without a commit. The stream commits every 10s: the window must cut
  // at the timeout, not wait.
  CvAdaptivePolicy policy{0.10, 5};
  policy.set_reference_throughput(100.0);
  const auto m = run_window_on_stream(policy, regular_stream(0.1), 0.0);
  EXPECT_TRUE(m.timed_out);
  EXPECT_NEAR(m.elapsed, 0.03, 1e-9);
  EXPECT_EQ(m.commits, 0u);
  EXPECT_DOUBLE_EQ(m.throughput, 0.0);
}

TEST(CvAdaptive, NoTimeoutWithoutReference) {
  CvAdaptivePolicy policy{0.50, 3};
  policy.begin_window(0.0);
  EXPECT_FALSE(policy.deadline().has_value());
}

TEST(CvAdaptive, AdaptiveTimeoutTracksLastCommit) {
  // Explicit scale 1.0 so the interval is exactly 1/T(1,1).
  CvAdaptivePolicy policy{0.001, 1000, 1.0};  // effectively never CV-stable
  policy.set_reference_throughput(10.0);  // timeout interval 0.1s
  policy.begin_window(0.0);
  EXPECT_NEAR(policy.deadline().value(), 0.1, 1e-12);
  EXPECT_FALSE(policy.on_commit(0.05));
  EXPECT_NEAR(policy.deadline().value(), 0.15, 1e-12);
}

TEST(Wpnoc, CompletesOnCommitCount) {
  // Stream faster than the sequential reference (the scaling regime the
  // paper's timeout is designed around): the count completes normally.
  WpnocPolicy policy{10, /*adaptive_timeout=*/true};
  policy.set_reference_throughput(100.0);
  const auto m = run_window_on_stream(policy, regular_stream(200.0), 0.0);
  EXPECT_EQ(m.commits, 10u);
  EXPECT_FALSE(m.timed_out);
}

TEST(Wpnoc, StreamSlowerThanSequentialTimesOut) {
  // A configuration slower than (1,1) is by definition low quality; the
  // adaptive timeout cuts it rather than waiting for the full count.
  WpnocPolicy policy{10, /*adaptive_timeout=*/true};
  policy.set_reference_throughput(100.0);
  const auto m = run_window_on_stream(policy, regular_stream(20.0), 0.0);
  EXPECT_TRUE(m.timed_out);
  EXPECT_LT(m.elapsed, 0.05);
}

TEST(Wpnoc, AdaptiveTimeoutCutsSlowStream) {
  WpnocPolicy policy{30, /*adaptive_timeout=*/true};
  policy.set_reference_throughput(100.0);  // 30ms timeout (3x scale)
  const auto m = run_window_on_stream(policy, regular_stream(1.0), 0.0);
  EXPECT_TRUE(m.timed_out);
  EXPECT_LT(m.elapsed, 0.1);
}

TEST(Wpnoc, WithoutTimeoutWaitsForever) {
  WpnocPolicy policy{5, /*adaptive_timeout=*/false};
  policy.set_reference_throughput(100.0);  // ignored without the flag
  const auto m = run_window_on_stream(policy, regular_stream(1.0), 0.0);
  EXPECT_EQ(m.commits, 5u);
  EXPECT_NEAR(m.elapsed, 5.0, 0.01);
}

TEST(MeasurementMath, ThroughputIsCommitsOverElapsed) {
  FixedCommitsPolicy policy{20};
  const auto m = run_window_on_stream(policy, regular_stream(40.0), 0.0);
  EXPECT_NEAR(m.throughput, 40.0, 1e-6);
}

TEST(MeasurementMath, CommitToCommitLatencyOnRegularStream) {
  // 40 commits/s => every gap is exactly 25 ms; mean == p99 == 25 ms.
  FixedCommitsPolicy policy{20};
  const auto m = run_window_on_stream(policy, regular_stream(40.0), 0.0);
  EXPECT_EQ(m.latency_samples, 20u);
  EXPECT_NEAR(m.mean_latency, 0.025, 1e-9);
  EXPECT_NEAR(m.p99_latency, 0.025, 1e-9);
}

TEST(MeasurementMath, LatencyStatsMatchGapDistribution) {
  // Gaps 10/20/.../1000 ms: mean = 505 ms; p99 must match the library's
  // percentile definition over the same sample set.
  FixedCommitsPolicy policy{100};
  std::vector<double> gaps;
  for (int i = 1; i <= 100; ++i) gaps.push_back(0.010 * i);
  std::size_t next = 0;
  double t = 0.0;
  const auto m = run_window_on_stream(
      policy,
      [&] {
        t += gaps[next++];
        return t;
      },
      0.0);
  EXPECT_EQ(m.latency_samples, 100u);
  EXPECT_NEAR(m.mean_latency, 0.505, 1e-9);
  EXPECT_NEAR(m.p99_latency, util::percentile(gaps, 0.99), 1e-9);
  EXPECT_GT(m.p99_latency, m.mean_latency);
}

TEST(MeasurementMath, ZeroCommitWindowHasNoLatency) {
  CvAdaptivePolicy policy{0.10, 5};
  policy.set_reference_throughput(100.0);
  const auto m = run_window_on_stream(policy, regular_stream(0.1), 0.0);
  EXPECT_EQ(m.commits, 0u);
  EXPECT_EQ(m.latency_samples, 0u);
  EXPECT_DOUBLE_EQ(m.mean_latency, 0.0);
  EXPECT_DOUBLE_EQ(m.p99_latency, 0.0);
}

TEST(MeasurementMath, AttachLatencySamplesOverridesGapEstimate) {
  Measurement m;
  m.mean_latency = 9.9;  // stale gap-derived estimate
  attach_latency_samples(m, {0.001, 0.002, 0.003, 0.004});
  EXPECT_EQ(m.latency_samples, 4u);
  EXPECT_NEAR(m.mean_latency, 0.0025, 1e-12);
  EXPECT_NEAR(m.p99_latency, util::percentile({0.001, 0.002, 0.003, 0.004}, 0.99),
              1e-12);
  // Empty sample sets leave the measurement untouched.
  Measurement untouched;
  attach_latency_samples(untouched, {});
  EXPECT_EQ(untouched.latency_samples, 0u);
  EXPECT_DOUBLE_EQ(untouched.mean_latency, 0.0);
}

TEST(PolicyNames, AreDescriptive) {
  EXPECT_EQ(FixedTimePolicy{0.5}.name(), "fixed-time(0.500s)");
  EXPECT_EQ(FixedCommitsPolicy{30}.name(), "fixed-commits(30)");
  EXPECT_EQ((CvAdaptivePolicy{0.10}).name(), "cv-adaptive(10%)");
  EXPECT_EQ((WpnocPolicy{10, true}).name(), "wpnoc10+adaptTO");
  EXPECT_EQ((WpnocPolicy{30, false}).name(), "wpnoc30");
}

// Property sweep: the CV-adaptive policy's measurement error shrinks as the
// CV threshold tightens (accuracy/latency trade-off of §VI).
class CvAccuracy : public ::testing::TestWithParam<double> {};

TEST_P(CvAccuracy, ErrorBoundedByThreshold) {
  const double threshold = GetParam();
  const sim::SurfaceModel model{sim::workload_by_name("tpcc-med"), 48};
  const opt::Config cfg{20, 2};
  const double truth = model.mean_throughput(cfg);
  double total_rel_err = 0.0;
  const int runs = 20;
  for (int r = 0; r < runs; ++r) {
    sim::CommitStream stream{model, cfg, 100 + static_cast<std::uint64_t>(r)};
    CvAdaptivePolicy policy{threshold, 5};
    const auto m =
        run_window_on_stream(policy, [&] { return stream.next_commit(); }, 0.0);
    total_rel_err += std::abs(m.throughput - truth) / truth;
  }
  // Generous bound: mean relative error within 4x the CV threshold plus the
  // warmup bias floor.
  EXPECT_LT(total_rel_err / runs, 4.0 * threshold + 0.25);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, CvAccuracy, ::testing::Values(0.02, 0.05, 0.10));

TEST(Cusum, DetectsUpwardShift) {
  CusumDetector detector{0.05, 0.5};
  detector.reset(100.0);
  bool detected = false;
  for (int i = 0; i < 10 && !detected; ++i) detected = detector.add(130.0);
  EXPECT_TRUE(detected);
}

TEST(Cusum, DetectsDownwardShift) {
  CusumDetector detector{0.05, 0.5};
  detector.reset(100.0);
  bool detected = false;
  for (int i = 0; i < 10 && !detected; ++i) detected = detector.add(70.0);
  EXPECT_TRUE(detected);
}

TEST(Cusum, IgnoresSmallFluctuations) {
  CusumDetector detector{0.05, 0.5};
  detector.reset(100.0);
  util::Rng rng{5};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(detector.add(rng.gaussian(100.0, 2.0))) << "at sample " << i;
  }
}

TEST(Cusum, UnarmedNeverFires) {
  CusumDetector detector;
  EXPECT_FALSE(detector.add(1e9));
}

TEST(Cusum, ResetRearms) {
  CusumDetector detector{0.05, 0.3};
  detector.reset(100.0);
  while (!detector.add(150.0)) {
  }
  detector.reset(150.0);
  EXPECT_FALSE(detector.add(150.0));
  EXPECT_DOUBLE_EQ(detector.reference(), 150.0);
}

}  // namespace
}  // namespace autopn::runtime
