// Tests for the five baseline optimizers against synthetic surfaces.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "opt/baselines.hpp"
#include "opt/runner.hpp"

namespace autopn::opt {
namespace {

/// Smooth unimodal surface peaking at (20, 2).
double unimodal(const Config& cfg) {
  const double dt = (cfg.t - 20) / 10.0;
  const double dc = (cfg.c - 2) / 2.0;
  return 1000.0 * std::exp(-(dt * dt + dc * dc));
}

/// Deceptive surface: global optimum at (1, 40), strong local optimum ridge
/// around (30, 1) — traps purely local searches started in the wrong basin.
double deceptive(const Config& cfg) {
  const double local = 600.0 * std::exp(-std::pow((cfg.t - 30) / 6.0, 2) -
                                        std::pow((cfg.c - 1) / 1.0, 2));
  const double global = 1000.0 * std::exp(-std::pow((cfg.t - 1) / 2.0, 2) -
                                          std::pow((cfg.c - 40) / 5.0, 2));
  return local + global;
}

TEST(RandomSearch, StopsAndFindsDecentConfig) {
  ConfigSpace space{48};
  RandomSearch rs{space, 1};
  const auto result = run_to_convergence(rs, unimodal);
  EXPECT_GT(result.explorations(), 5u);
  EXPECT_LT(result.explorations(), space.size());
  EXPECT_GT(result.final_best_kpi, 0.0);
}

TEST(RandomSearch, NeverRepeatsConfigs) {
  ConfigSpace space{16};
  RandomSearch rs{space, 2};
  std::set<std::pair<int, int>> seen;
  const auto result = run_to_convergence(rs, unimodal);
  for (const auto& step : result.steps) {
    EXPECT_TRUE(seen.emplace(step.config.t, step.config.c).second);
  }
}

TEST(RandomSearch, DifferentSeedsDifferentOrder) {
  ConfigSpace space{48};
  RandomSearch a{space, 10};
  RandomSearch b{space, 11};
  const auto first_a = a.propose();
  const auto first_b = b.propose();
  ASSERT_TRUE(first_a && first_b);
  // Overwhelmingly likely to differ over a 198-point space.
  EXPECT_NE(first_a->t * 100 + first_a->c, first_b->t * 100 + first_b->c);
}

TEST(GridSearch, SweepsCFirstThenT) {
  ConfigSpace space{48};
  GridSearch gs{space};
  const auto p1 = gs.propose();
  gs.observe(*p1, 1.0);
  const auto p2 = gs.propose();
  ASSERT_TRUE(p1 && p2);
  EXPECT_EQ(*p1, (Config{1, 1}));
  EXPECT_EQ(*p2, (Config{1, 2}));
}

TEST(GridSearch, StopsEarlyOnPlateau) {
  ConfigSpace space{48};
  GridSearch gs{space};
  // Flat surface: after the window of stale observations it must stop.
  const auto result = run_to_convergence(gs, [](const Config&) { return 100.0; });
  EXPECT_LE(result.explorations(), 7u);
}

TEST(HillClimbing, ClimbsToLocalOptimumOnUnimodal) {
  ConfigSpace space{48};
  // Many random starts: on a unimodal surface HC must always end at the peak.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    HillClimbing hc{space, seed};
    const auto result = run_to_convergence(hc, unimodal);
    EXPECT_NEAR(result.final_best_kpi, unimodal(Config{20, 2}),
                unimodal(Config{20, 2}) * 0.02)
        << "seed " << seed;
  }
}

TEST(HillClimbing, FixedStartClimbs) {
  ConfigSpace space{48};
  HillClimbing hc{space, 0, Config{15, 1}};
  const auto result = run_to_convergence(hc, unimodal);
  EXPECT_EQ(result.final_best, (Config{20, 2}));
}

TEST(HillClimbing, SeededStartSkipsRemeasurement) {
  ConfigSpace space{48};
  HillClimbing hc{space, 0};
  hc.seed(Config{19, 2}, unimodal(Config{19, 2}));
  int measured_seed_point = 0;
  const auto result = run_to_convergence(hc, [&](const Config& cfg) {
    if (cfg == Config{19, 2}) ++measured_seed_point;
    return unimodal(cfg);
  });
  EXPECT_EQ(measured_seed_point, 0);
  EXPECT_EQ(result.final_best, (Config{20, 2}));
}

TEST(HillClimbing, GetsTrappedOnDeceptiveSurface) {
  // The motivating failure of pure local search (paper Fig 5): started in
  // the wrong basin it converges to the local ridge, far from optimum.
  ConfigSpace space{48};
  HillClimbing hc{space, 0, Config{28, 1}};
  const auto result = run_to_convergence(hc, deceptive);
  EXPECT_LT(result.final_best_kpi, 700.0);  // stuck near the 600-high ridge
}

TEST(SimulatedAnnealing, ConvergesOnUnimodal) {
  ConfigSpace space{48};
  double best = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    SimulatedAnnealing sa{space, seed};
    const auto result = run_to_convergence(sa, unimodal);
    best = std::max(best, result.final_best_kpi);
  }
  EXPECT_GT(best, 0.8 * unimodal(Config{20, 2}));
}

TEST(SimulatedAnnealing, AcceptsDownhillMovesEarly) {
  ConfigSpace space{48};
  SimulatedAnnealing sa{space, 3};
  const auto result = run_to_convergence(sa, unimodal, 400);
  // The walk must have explored more than a pure descent would (which stops
  // at the first local optimum after ~1 neighbourhood).
  EXPECT_GT(result.explorations(), 10u);
}

TEST(GeneticAlgorithm, EvaluatesInitialPopulation) {
  ConfigSpace space{48};
  GaParams params;
  params.population = 8;
  GeneticAlgorithm ga{space, 4, params};
  const auto result = run_to_convergence(ga, unimodal, 500);
  EXPECT_GE(result.explorations(), params.population);
}

TEST(GeneticAlgorithm, FindsGoodSolutionOnDeceptive) {
  // GA's broad search should usually escape the deceptive ridge (the paper
  // finds GA the best baseline). Check the best of a few seeds gets close to
  // the global optimum.
  ConfigSpace space{48};
  double best = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    GeneticAlgorithm ga{space, seed};
    const auto result = run_to_convergence(ga, deceptive, 500);
    best = std::max(best, result.final_best_kpi);
  }
  EXPECT_GT(best, 900.0);
}

TEST(GeneticAlgorithm, OffspringAlwaysValid) {
  ConfigSpace space{48};
  GeneticAlgorithm ga{space, 5};
  const auto result = run_to_convergence(ga, deceptive, 500);
  for (const auto& step : result.steps) {
    EXPECT_TRUE(space.valid(step.config)) << step.config.to_string();
  }
}

TEST(GeneticAlgorithm, RecyclesKnownConfigsWithoutSpendingExplorations) {
  ConfigSpace space{8};  // tiny space forces repeats across generations
  GeneticAlgorithm ga{space, 6};
  std::set<std::pair<int, int>> distinct;
  const auto result = run_to_convergence(ga, unimodal, 500);
  for (const auto& step : result.steps) {
    EXPECT_TRUE(distinct.emplace(step.config.t, step.config.c).second)
        << "re-measured " << step.config.to_string();
  }
}

TEST(BaseOptimizerBookkeeping, TracksBestAndHistory) {
  ConfigSpace space{48};
  RandomSearch rs{space, 7};
  const auto c1 = rs.propose();
  rs.observe(*c1, 10.0);
  const auto c2 = rs.propose();
  rs.observe(*c2, 5.0);
  EXPECT_EQ(rs.best(), *c1);
  EXPECT_EQ(rs.history().size(), 2u);
  EXPECT_TRUE(rs.explored(*c1));
  EXPECT_EQ(rs.kpi_of(*c2).value(), 5.0);
}

TEST(NoImprovementTrackerTest, StopsAfterWindow) {
  NoImprovementTracker tracker{3, 0.10};
  tracker.add(100.0);
  tracker.add(101.0);  // < 10% improvement -> stale
  tracker.add(102.0);  // stale
  EXPECT_FALSE(tracker.should_stop());
  tracker.add(103.0);  // stale x3
  EXPECT_TRUE(tracker.should_stop());
}

TEST(NoImprovementTrackerTest, ImprovementResets) {
  NoImprovementTracker tracker{2, 0.10};
  tracker.add(100.0);
  tracker.add(100.0);
  tracker.add(150.0);  // big improvement resets
  EXPECT_FALSE(tracker.should_stop());
  tracker.add(151.0);
  tracker.add(151.0);
  EXPECT_TRUE(tracker.should_stop());
}

}  // namespace
}  // namespace autopn::opt
