// Chaos tests of the controller watchdog: when the KPI monitor stalls (no
// commit events reach it), the controller counts the zero-commit timeout
// windows, and after the configured streak reverts the actuator to the last
// configuration that demonstrably made progress.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "opt/baselines.hpp"
#include "runtime/controller.hpp"
#include "runtime/monitor.hpp"
#include "stm/stm.hpp"
#include "stm/vbox.hpp"
#include "util/clock.hpp"
#include "util/failpoint.hpp"

namespace autopn::runtime {
namespace {

class ChaosRuntimeTest : public ::testing::Test {
 protected:
  void TearDown() override { util::FailpointRegistry::instance().disarm_all(); }
};

/// Keeps the Stm committing in the background so measurement windows see
/// commit events (unless a failpoint swallows them).
class WorkloadDriver {
 public:
  explicit WorkloadDriver(stm::Stm& stm) : stm_(&stm) {
    stm_->run_top([&](stm::Tx& tx) { box_.write(tx, 0); });
    thread_ = std::jthread{[this] {
      while (!stop_.load(std::memory_order_relaxed)) {
        stm_->run_top(
            [&](stm::Tx& tx) { box_.write(tx, box_.read(tx) + 1); });
        std::this_thread::sleep_for(std::chrono::microseconds{200});
      }
    }};
  }
  ~WorkloadDriver() { stop_.store(true, std::memory_order_relaxed); }

 private:
  stm::Stm* stm_;
  stm::VBox<long> box_;
  std::atomic<bool> stop_{false};
  std::jthread thread_;
};

TEST_F(ChaosRuntimeTest, WatchdogRevertsToLastKnownGoodOnMonitorStall) {
  if (!util::FailpointRegistry::compiled_in()) GTEST_SKIP();
  stm::StmConfig stm_config;
  stm_config.pool_threads = 2;
  stm::Stm stm{stm_config};
  WorkloadDriver driver{stm};
  util::WallClock clock;

  const opt::ConfigSpace space{8};
  ControllerParams params;
  params.max_window_seconds = 0.05;  // stalled windows end quickly
  params.watchdog_stall_windows = 2;
  TuningController controller{
      stm, std::make_unique<opt::RandomSearch>(space, 7),
      std::make_unique<FixedTimePolicy>(0.03), clock, params};

  // A healthy window under a known configuration: becomes last-known-good.
  const opt::Config good{2, 2};
  controller.actuator().apply(good);
  const Measurement healthy = controller.measure_once();
  ASSERT_GT(healthy.commits, 0u);
  ASSERT_TRUE(controller.watchdog().has_last_known_good);
  EXPECT_EQ(controller.watchdog().last_known_good.t, good.t);
  EXPECT_EQ(controller.watchdog().last_known_good.c, good.c);

  // Move to a different configuration, then stall the monitor: commit events
  // are swallowed before they reach the controller's queue.
  const opt::Config bad{7, 1};
  controller.actuator().apply(bad);
  util::FailpointRegistry::instance().arm_from_string(
      "runtime.monitor.drop_commit=error(p=1)");
  (void)controller.measure_once();  // stall 1 — streak building
  (void)controller.measure_once();  // stall 2 — watchdog intervenes
  util::FailpointRegistry::instance().disarm_all();

  const WatchdogReport& report = controller.watchdog();
  EXPECT_GE(report.stalled_windows, 2u);
  EXPECT_GE(report.reverts, 1u);
  ASSERT_FALSE(report.events.empty());
  EXPECT_EQ(report.events.front().reverted_from.t, bad.t);
  EXPECT_EQ(report.events.front().reverted_to.t, good.t);
  EXPECT_EQ(report.events.front().reverted_to.c, good.c);
  // The actuator really is back on the last-known-good configuration.
  EXPECT_EQ(controller.actuator().current().t, good.t);
  EXPECT_EQ(controller.actuator().current().c, good.c);
  EXPECT_EQ(stm.top_limit(), static_cast<std::size_t>(good.t));

  // Once events flow again, progress clears the streak and re-learns the
  // last-known-good from the live configuration.
  const Measurement recovered = controller.measure_once();
  EXPECT_GT(recovered.commits, 0u);
}

TEST_F(ChaosRuntimeTest, WatchdogDisabledNeverReverts) {
  if (!util::FailpointRegistry::compiled_in()) GTEST_SKIP();
  stm::StmConfig stm_config;
  stm_config.pool_threads = 2;
  stm::Stm stm{stm_config};
  WorkloadDriver driver{stm};
  util::WallClock clock;

  const opt::ConfigSpace space{8};
  ControllerParams params;
  params.max_window_seconds = 0.03;
  params.watchdog_stall_windows = 0;  // disabled
  TuningController controller{
      stm, std::make_unique<opt::RandomSearch>(space, 7),
      std::make_unique<FixedTimePolicy>(0.02), clock, params};
  controller.actuator().apply(opt::Config{2, 2});
  (void)controller.measure_once();
  const opt::Config bad{5, 1};
  controller.actuator().apply(bad);
  util::FailpointRegistry::instance().arm_from_string(
      "runtime.monitor.drop_commit=error(p=1)");
  for (int i = 0; i < 3; ++i) (void)controller.measure_once();
  util::FailpointRegistry::instance().disarm_all();
  const WatchdogReport& report = controller.watchdog();
  EXPECT_GE(report.stalled_windows, 3u);  // stalls are still counted
  EXPECT_EQ(report.reverts, 0u);
  EXPECT_EQ(controller.actuator().current().t, bad.t);
}

}  // namespace
}  // namespace autopn::runtime
