// EventLoop reactor tests: cross-thread post() via the eventfd wakeup,
// loop-thread affinity, one-shot timers (ordering + cancellation) on the
// timerfd, fd readiness dispatch, and the drain() shutdown barrier.
#include <gtest/gtest.h>

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "net/event_loop.hpp"

namespace autopn::net {
namespace {

using namespace std::chrono_literals;

/// Runs the loop on a background thread for the duration of the test.
class LoopFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    thread_ = std::thread([this] { loop_.run(); });
    // Wait for the loop thread to actually enter run().
    std::atomic<bool> ready{false};
    loop_.post([&] { ready.store(true); });
    while (!ready.load()) std::this_thread::sleep_for(1ms);
  }

  void TearDown() override {
    loop_.stop();
    thread_.join();
  }

  EventLoop loop_;
  std::thread thread_;
};

TEST_F(LoopFixture, PostRunsOnLoopThread) {
  std::atomic<bool> ran{false};
  std::atomic<bool> on_loop_thread{false};
  loop_.post([&] {
    on_loop_thread.store(loop_.in_loop_thread());
    ran.store(true);
  });
  loop_.drain();
  EXPECT_TRUE(ran.load());
  EXPECT_TRUE(on_loop_thread.load());
  EXPECT_FALSE(loop_.in_loop_thread());
}

TEST_F(LoopFixture, PostFromLoopThreadDoesNotDeadlock) {
  std::atomic<int> order{0};
  std::atomic<int> outer{-1};
  std::atomic<int> inner{-1};
  loop_.post([&] {
    loop_.post([&] { inner.store(order.fetch_add(1)); });
    outer.store(order.fetch_add(1));
  });
  loop_.drain();
  loop_.drain();  // second barrier: the nested task ran in a later round
  EXPECT_EQ(outer.load(), 0);
  EXPECT_EQ(inner.load(), 1);
}

TEST_F(LoopFixture, ManyConcurrentPostersAllExecute) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::atomic<int> count{0};
  {
    std::vector<std::jthread> posters;
    for (int t = 0; t < kThreads; ++t) {
      posters.emplace_back([&] {
        for (int i = 0; i < kPerThread; ++i) {
          loop_.post([&] { count.fetch_add(1); });
        }
      });
    }
  }
  loop_.drain();
  EXPECT_EQ(count.load(), kThreads * kPerThread);
}

TEST_F(LoopFixture, TimersFireInDeadlineOrder) {
  std::vector<int> fired;
  std::atomic<bool> done{false};
  loop_.post([&] {
    // Registered out of order; must fire in deadline order.
    loop_.add_timer(0.030, [&] {
      fired.push_back(3);
      done.store(true);
    });
    loop_.add_timer(0.001, [&] { fired.push_back(1); });
    loop_.add_timer(0.015, [&] { fired.push_back(2); });
  });
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (!done.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(done.load()) << "timers never fired";
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST_F(LoopFixture, CancelledTimerNeverFires) {
  std::atomic<bool> cancelled_fired{false};
  std::atomic<bool> kept_fired{false};
  loop_.post([&] {
    const auto id = loop_.add_timer(0.005, [&] { cancelled_fired.store(true); });
    loop_.cancel_timer(id);
    loop_.add_timer(0.010, [&] { kept_fired.store(true); });
  });
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (!kept_fired.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(kept_fired.load());
  EXPECT_FALSE(cancelled_fired.load());
}

TEST_F(LoopFixture, FdReadinessDispatchesHandler) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::atomic<int> bytes_seen{0};
  loop_.post([&] {
    loop_.add_fd(fds[0], EPOLLIN, [&, fd = fds[0]](std::uint32_t events) {
      if (events & EPOLLIN) {
        char buf[64];
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n > 0) bytes_seen.fetch_add(static_cast<int>(n));
      }
    });
  });
  loop_.drain();
  ASSERT_EQ(::write(fds[1], "hello", 5), 5);
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (bytes_seen.load() < 5 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(bytes_seen.load(), 5);
  loop_.post([&] { loop_.remove_fd(fds[0]); });
  loop_.drain();
  // After removal, more data must not invoke the handler.
  ASSERT_EQ(::write(fds[1], "again", 5), 5);
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(bytes_seen.load(), 5);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST_F(LoopFixture, DrainIsABarrierForPriorPosts) {
  // Everything posted before drain() must have executed when it returns.
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> ran{0};
    for (int i = 0; i < 20; ++i) loop_.post([&] { ran.fetch_add(1); });
    loop_.drain();
    EXPECT_EQ(ran.load(), 20) << "round " << round;
  }
}

TEST(NetLoop, StopDrainsFinalPostedBatch) {
  EventLoop loop;
  std::atomic<bool> ran{false};
  std::thread t{[&] { loop.run(); }};
  loop.post([&] { ran.store(true); });
  loop.stop();
  t.join();
  EXPECT_TRUE(ran.load());
}

}  // namespace
}  // namespace autopn::net
