// Closed parallel-nesting semantics: child visibility rules, merge-on-commit,
// sibling conflict detection and child-local retry, multi-level nesting.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "stm/containers.hpp"
#include "stm/stm.hpp"

namespace autopn::stm {
namespace {

StmConfig nest_config(std::size_t pool = 4, std::size_t c = 8) {
  StmConfig cfg;
  cfg.pool_threads = pool;
  cfg.initial_top = 4;
  cfg.initial_children = c;
  return cfg;
}

TEST(Nesting, ChildSeesParentTentativeWrite) {
  Stm stm{nest_config()};
  VBox<int> box{1};
  stm.run_top([&](Tx& tx) {
    box.write(tx, 100);
    int child_saw = 0;
    tx.run_children({[&](Tx& child) { child_saw = box.read(child); }});
    EXPECT_EQ(child_saw, 100);
  });
}

TEST(Nesting, ChildSeesGlobalSnapshotWhenParentSilent) {
  Stm stm{nest_config()};
  VBox<int> box{55};
  stm.run_top([&](Tx& tx) {
    int child_saw = 0;
    tx.run_children({[&](Tx& child) { child_saw = box.read(child); }});
    EXPECT_EQ(child_saw, 55);
  });
}

TEST(Nesting, ChildWriteVisibleToParentAfterJoin) {
  Stm stm{nest_config()};
  VBox<int> box{0};
  stm.run_top([&](Tx& tx) {
    tx.run_children({[&](Tx& child) { box.write(child, 9); }});
    EXPECT_EQ(box.read(tx), 9);  // merged into parent's write set
  });
  EXPECT_EQ(box.peek(), 9);  // and committed globally with the root
}

TEST(Nesting, ChildWriteNotGloballyVisibleUntilRootCommits) {
  Stm stm{nest_config()};
  VBox<int> box{0};
  stm.run_top([&](Tx& tx) {
    tx.run_children({[&](Tx& child) { box.write(child, 5); }});
    // Closed nesting: still private to the tree before root commit.
    EXPECT_EQ(box.peek(), 0);
  });
  EXPECT_EQ(box.peek(), 5);
}

TEST(Nesting, DisjointSiblingsAllMerge) {
  Stm stm{nest_config()};
  TArray<int> arr{16, 0};
  stm.run_top([&](Tx& tx) {
    std::vector<std::function<void(Tx&)>> kids;
    for (std::size_t i = 0; i < 16; ++i) {
      kids.emplace_back([&arr, i](Tx& child) {
        arr.write(child, i, static_cast<int>(i) + 1);
      });
    }
    tx.run_children(std::move(kids));
  });
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(arr.peek(i), static_cast<int>(i) + 1);
  }
  EXPECT_EQ(stm.stats().child_commits, 16u);
  EXPECT_EQ(stm.stats().child_aborts, 0u);
}

TEST(Nesting, ConflictingSiblingsSerializeViaRetry) {
  // All children increment one counter: sibling conflicts force retries but
  // the final sum must equal the number of children (atomic increments).
  Stm stm{nest_config(/*pool=*/4, /*c=*/8)};
  VBox<int> counter{0};
  const int kids_n = 12;
  stm.run_top([&](Tx& tx) {
    std::vector<std::function<void(Tx&)>> kids;
    for (int i = 0; i < kids_n; ++i) {
      kids.emplace_back([&](Tx& child) { counter.write(child, counter.read(child) + 1); });
    }
    tx.run_children(std::move(kids));
  });
  EXPECT_EQ(counter.peek(), kids_n);
  EXPECT_EQ(stm.stats().child_commits, static_cast<std::uint64_t>(kids_n));
}

TEST(Nesting, SiblingConflictRetriesChildOnlyNotRoot) {
  Stm stm{nest_config()};
  VBox<int> counter{0};
  std::atomic<int> root_attempts{0};
  stm.run_top([&](Tx& tx) {
    root_attempts.fetch_add(1);
    std::vector<std::function<void(Tx&)>> kids;
    for (int i = 0; i < 8; ++i) {
      kids.emplace_back([&](Tx& child) { counter.write(child, counter.read(child) + 1); });
    }
    tx.run_children(std::move(kids));
  });
  EXPECT_EQ(root_attempts.load(), 1);  // partial aborts stayed inside the tree
  EXPECT_EQ(counter.peek(), 8);
}

TEST(Nesting, TwoLevelNesting) {
  Stm stm{nest_config(/*pool=*/4, /*c=*/4)};
  TArray<int> arr{8, 0};
  stm.run_top([&](Tx& tx) {
    std::vector<std::function<void(Tx&)>> kids;
    for (std::size_t half = 0; half < 2; ++half) {
      kids.emplace_back([&arr, half](Tx& child) {
        std::vector<std::function<void(Tx&)>> grandkids;
        for (std::size_t i = 0; i < 4; ++i) {
          const std::size_t idx = half * 4 + i;
          grandkids.emplace_back([&arr, idx](Tx& grandchild) {
            arr.write(grandchild, idx, 7);
            EXPECT_EQ(grandchild.depth(), 2);
          });
        }
        child.run_children(std::move(grandkids));
        // Grandchildren's writes merged into the child.
        for (std::size_t i = 0; i < 4; ++i) {
          EXPECT_EQ(arr.read(child, half * 4 + i), 7);
        }
      });
    }
    tx.run_children(std::move(kids));
  });
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(arr.peek(i), 7);
}

TEST(Nesting, DeepNestingWithChildLimitOne) {
  // c=1 must not deadlock: a nested spawner releases its token while waiting.
  Stm stm{nest_config(/*pool=*/2, /*c=*/1)};
  VBox<int> box{0};
  stm.run_top([&](Tx& tx) {
    tx.run_children({[&](Tx& child) {
      child.run_children({[&](Tx& grandchild) {
        grandchild.run_children({[&](Tx& ggchild) { box.write(ggchild, 3); }});
      }});
    }});
  });
  EXPECT_EQ(box.peek(), 3);
}

TEST(Nesting, ChildReadValidatedAgainstSiblingWrite) {
  // Construct a deterministic sibling conflict: both children read-modify-
  // write the same box; exactly one must retry (or more, but commits == 2 and
  // result == 2).
  Stm stm{nest_config(/*pool=*/2, /*c=*/2)};
  VBox<int> box{0};
  stm.run_top([&](Tx& tx) {
    std::vector<std::function<void(Tx&)>> kids;
    for (int i = 0; i < 2; ++i) {
      kids.emplace_back([&](Tx& child) { box.write(child, box.read(child) + 1); });
    }
    tx.run_children(std::move(kids));
  });
  EXPECT_EQ(box.peek(), 2);
}

TEST(Nesting, EmptyChildBatchIsNoop) {
  Stm stm{nest_config()};
  VBox<int> box{1};
  stm.run_top([&](Tx& tx) {
    tx.run_children({});
    box.write(tx, 2);
  });
  EXPECT_EQ(box.peek(), 2);
}

TEST(Nesting, UserExceptionInChildPropagatesToParent) {
  Stm stm{nest_config()};
  VBox<int> box{0};
  EXPECT_THROW(stm.run_top([&](Tx& tx) {
    tx.run_children({[&](Tx&) { throw std::runtime_error{"child boom"}; }});
    box.write(tx, 1);
  }),
               std::runtime_error);
  EXPECT_EQ(box.peek(), 0);
}

TEST(Nesting, SequentialChildBatches) {
  Stm stm{nest_config()};
  VBox<int> box{0};
  stm.run_top([&](Tx& tx) {
    tx.run_children({[&](Tx& child) { box.write(child, box.read(child) + 1); }});
    tx.run_children({[&](Tx& child) { box.write(child, box.read(child) + 1); }});
    EXPECT_EQ(box.read(tx), 2);
  });
  EXPECT_EQ(box.peek(), 2);
}

TEST(Nesting, ParentReadThenChildWriteThenParentRead) {
  // Parent reads X, a child overwrites it, parent reads again and must see
  // the child's (merged) value — nested program-order semantics.
  Stm stm{nest_config()};
  VBox<int> box{10};
  stm.run_top([&](Tx& tx) {
    EXPECT_EQ(box.read(tx), 10);
    tx.run_children({[&](Tx& child) { box.write(child, 20); }});
    EXPECT_EQ(box.read(tx), 20);
  });
  EXPECT_EQ(box.peek(), 20);
}

TEST(Nesting, ManyChildrenWithSmallPool) {
  // Fan-out far above the pool size; help-draining keeps progress.
  Stm stm{nest_config(/*pool=*/1, /*c=*/4)};
  TArray<long> arr{64, 0L};
  stm.run_top([&](Tx& tx) {
    std::vector<std::function<void(Tx&)>> kids;
    for (std::size_t i = 0; i < 64; ++i) {
      kids.emplace_back([&arr, i](Tx& child) { arr.write(child, i, 1L); });
    }
    tx.run_children(std::move(kids));
  });
  long sum = 0;
  for (std::size_t i = 0; i < 64; ++i) sum += arr.peek(i);
  EXPECT_EQ(sum, 64L);
}

TEST(Nesting, GrandchildSeesGrandparentTentativeWrite) {
  Stm stm{nest_config()};
  VBox<int> box{1};
  stm.run_top([&](Tx& tx) {
    box.write(tx, 42);
    int seen = 0;
    tx.run_children({[&](Tx& child) {
      child.run_children({[&](Tx& grandchild) { seen = box.read(grandchild); }});
    }});
    EXPECT_EQ(seen, 42);
  });
}

}  // namespace
}  // namespace autopn::stm
