// Tests for the serving engine's admission queue (backpressure, shedding,
// FIFO fairness, drain-on-close) and the striped latency histogram.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "serve/latency.hpp"
#include "serve/request_queue.hpp"

namespace autopn::serve {
namespace {

Request request_with_id(std::uint64_t id) {
  Request r;
  r.id = id;
  return r;
}

TEST(RequestQueue, AdmitsBelowWatermarkShedsAtIt) {
  RequestQueue queue{8, 4};
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(queue.try_push(request_with_id(i)), RequestQueue::Admit::kAdmitted);
  }
  EXPECT_EQ(queue.try_push(request_with_id(4)), RequestQueue::Admit::kShed);
  EXPECT_EQ(queue.depth(), 4u);
  // Draining one request reopens admission.
  ASSERT_TRUE(queue.pop().has_value());
  EXPECT_EQ(queue.try_push(request_with_id(5)), RequestQueue::Admit::kAdmitted);
  EXPECT_EQ(queue.offered(), 6u);
  EXPECT_EQ(queue.admitted(), 5u);
  EXPECT_EQ(queue.shed(), 1u);
}

TEST(RequestQueue, WatermarkDefaultsToThreeQuartersOfCapacity) {
  RequestQueue queue{100};
  EXPECT_EQ(queue.capacity(), 100u);
  EXPECT_EQ(queue.watermark(), 75u);
  // Watermark never exceeds capacity and never drops to zero.
  EXPECT_EQ((RequestQueue{4, 900}).watermark(), 4u);
  EXPECT_EQ((RequestQueue{1}).watermark(), 1u);
}

TEST(RequestQueue, FifoOrderPreserved) {
  RequestQueue queue{128, 128};
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_EQ(queue.try_push(request_with_id(i)), RequestQueue::Admit::kAdmitted);
  }
  for (std::uint64_t i = 0; i < 100; ++i) {
    const auto r = queue.pop();
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->id, i);
  }
}

TEST(RequestQueue, CloseDrainsBacklogThenSignalsEnd) {
  RequestQueue queue{16};
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_EQ(queue.try_push(request_with_id(i)), RequestQueue::Admit::kAdmitted);
  }
  queue.close();
  EXPECT_EQ(queue.try_push(request_with_id(99)), RequestQueue::Admit::kClosed);
  for (std::uint64_t i = 0; i < 5; ++i) {
    const auto r = queue.pop();
    ASSERT_TRUE(r.has_value()) << "request " << i << " lost on close";
    EXPECT_EQ(r->id, i);
  }
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(RequestQueue, CloseWakesBlockedPoppers) {
  RequestQueue queue{4};
  std::atomic<int> finished{0};
  std::vector<std::jthread> poppers;
  for (int i = 0; i < 3; ++i) {
    poppers.emplace_back([&] {
      while (queue.pop().has_value()) {
      }
      finished.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds{10});
  queue.close();
  poppers.clear();  // join
  EXPECT_EQ(finished.load(), 3);
}

TEST(RequestQueue, ConcurrentCountsConserve) {
  RequestQueue queue{64, 32};
  std::atomic<std::uint64_t> popped{0};
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 500;
  {
    std::vector<std::jthread> consumers;
    for (int i = 0; i < kConsumers; ++i) {
      consumers.emplace_back([&] {
        while (queue.pop().has_value()) {
          popped.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    {
      std::vector<std::jthread> producers;
      for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
          for (int i = 0; i < kPerProducer; ++i) {
            (void)queue.try_push(request_with_id(
                static_cast<std::uint64_t>(p) * kPerProducer + i));
          }
        });
      }
    }  // join producers
    queue.close();
  }  // join consumers
  EXPECT_EQ(queue.offered(), kProducers * kPerProducer);
  EXPECT_EQ(queue.admitted() + queue.shed(), queue.offered());
  EXPECT_EQ(popped.load(), queue.admitted());  // nothing admitted was lost
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(RequestQueue, CloseWhileSubmittingNeverLosesOrDuplicates) {
  // Race close() against a storm of try_push: every offered request must be
  // accounted exactly once (admitted ⊕ shed/closed), and every admitted one
  // must still be poppable after close (drain semantics). Looped so the
  // close lands at varying interleavings; run under TSan in run_all.sh.
  constexpr int kRounds = 50;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 60;
  for (int round = 0; round < kRounds; ++round) {
    RequestQueue queue{1024, 1024};
    std::atomic<bool> go{false};
    std::atomic<std::uint64_t> admitted_by_producers{0};
    std::vector<std::jthread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        while (!go.load(std::memory_order_acquire)) {
        }
        for (int i = 0; i < kPerProducer; ++i) {
          if (queue.try_push(request_with_id(
                  static_cast<std::uint64_t>(p) * kPerProducer + i)) ==
              RequestQueue::Admit::kAdmitted) {
            admitted_by_producers.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    go.store(true, std::memory_order_release);
    if (round % 2 == 1) std::this_thread::yield();
    queue.close();
    producers.clear();  // join
    EXPECT_EQ(queue.offered(), kProducers * kPerProducer);
    EXPECT_EQ(queue.admitted() + queue.shed(), queue.offered());
    EXPECT_EQ(queue.admitted(), admitted_by_producers.load());
    // Drain: exactly the admitted requests come out, then end-of-queue.
    std::uint64_t drained = 0;
    while (queue.pop().has_value()) ++drained;
    EXPECT_EQ(drained, queue.admitted());
    EXPECT_EQ(queue.depth(), 0u);
  }
}

TEST(RequestQueue, DrainOnCloseRaceWithConcurrentPoppers) {
  // close() while consumers are mid-pop: the backlog admitted before the
  // close must be fully consumed — never dropped by a popper observing
  // closed_ early — and all poppers must terminate.
  constexpr int kRounds = 50;
  constexpr int kConsumers = 3;
  for (int round = 0; round < kRounds; ++round) {
    RequestQueue queue{256, 256};
    const std::uint64_t backlog = 40 + round % 7;
    for (std::uint64_t i = 0; i < backlog; ++i) {
      ASSERT_EQ(queue.try_push(request_with_id(i)),
                RequestQueue::Admit::kAdmitted);
    }
    std::atomic<std::uint64_t> popped{0};
    {
      std::vector<std::jthread> consumers;
      for (int c = 0; c < kConsumers; ++c) {
        consumers.emplace_back([&] {
          while (queue.pop().has_value()) {
            popped.fetch_add(1, std::memory_order_relaxed);
          }
        });
      }
      if (round % 3 == 0) std::this_thread::yield();
      queue.close();
    }  // join consumers
    EXPECT_EQ(popped.load(), backlog) << "round " << round;
    EXPECT_FALSE(queue.pop().has_value());
  }
}

TEST(LatencyRecorder, PercentilesWithinBinResolution) {
  LatencyRecorder recorder;
  // 1..1000 ms uniformly: p50 ≈ 0.5 s scaled — use exact ranks instead:
  // samples k ms for k in [1, 1000]; p50 = 500 ms, p99 = 990 ms.
  for (int k = 1; k <= 1000; ++k) recorder.record(k * 1e-3);
  const auto s = recorder.summary();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_NEAR(s.mean, 0.5005, 1e-4);
  // Log bins are 10^(1/16) wide => relative error bound ~16%.
  EXPECT_NEAR(s.p50, 0.500, 0.500 * 0.16);
  EXPECT_NEAR(s.p95, 0.950, 0.950 * 0.16);
  EXPECT_NEAR(s.p99, 0.990, 0.990 * 0.16);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
}

TEST(LatencyRecorder, ClampsOutOfRangeSamples) {
  LatencyRecorder recorder;
  recorder.record(0.0);     // below the 1 µs floor
  recorder.record(-1.0);    // nonsense input must not crash or wrap
  recorder.record(1e6);     // beyond the top decade
  const auto s = recorder.summary();
  EXPECT_EQ(s.count, 3u);
  EXPECT_GT(s.p99, 100.0);  // clamped into the top bin, not lost
}

TEST(LatencyRecorder, ResetClears) {
  LatencyRecorder recorder;
  for (int i = 0; i < 10; ++i) recorder.record(0.01);
  recorder.reset();
  const auto s = recorder.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST(LatencyRecorder, ConcurrentRecordsAllCounted) {
  LatencyRecorder recorder{8};
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          recorder.record(1e-3 * (1 + (t + i) % 10));
        }
      });
    }
  }
  EXPECT_EQ(recorder.count(), kThreads * kPerThread);
  const auto s = recorder.summary();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  EXPECT_GT(s.mean, 0.0);
}

}  // namespace
}  // namespace autopn::serve
