// Model-checks the RequestQueue MPMC handshake through the sync seam: one
// producer pushes two requests and closes; two consumers pop until drained.
// The interesting interleavings are exactly the classic condvar hazards —
// notify_one landing while no consumer waits, close racing a pop, a consumer
// checking its predicate between a push and the notify — and exhaustive
// success proves the mutex/condvar protocol (and the admission counters
// behind it) has no lost wakeup, no lost request, and no data race in any
// schedule:
//
//   * drain semantics — pop() returns nullopt only after close(), and every
//     admitted request is popped by someone before that (close never drops);
//   * FIFO           — each consumer's ids are strictly increasing;
//   * counters       — offered == admitted == 2, shed == 0, depth drains to 0.

#include <cstdint>
#include <memory>
#include <optional>

#include "mc/explore.hpp"
#include "mc_harness.hpp"
#include "serve/request_queue.hpp"

namespace {

namespace mc = autopn::mc;
namespace serve = autopn::serve;

struct World {
  serve::RequestQueue queue{/*capacity=*/4, /*shed_watermark=*/4};
  // Per-consumer pop counts; written by exactly one consumer each and read
  // by the main thread after the joins — the checker verifies those edges.
  mc::ModelShared<int> popped[2];
};

void consumer(const std::shared_ptr<World>& w, int index) {
  std::uint64_t last_id = 0;
  int count = 0;
  while (std::optional<serve::Request> r = w->queue.pop()) {
    MC_ASSERT(r->id > last_id, "per-consumer pops preserve FIFO order");
    last_id = r->id;
    ++count;
  }
  MC_ASSERT(w->queue.closed(), "pop returns nullopt only once closed");
  w->popped[index].write() = count;
}

void body() {
  auto w = std::make_shared<World>();
  mc::Thread producer{[w] {
    for (std::uint64_t id = 1; id <= 2; ++id) {
      serve::Request request;
      request.id = id;
      const auto admit = w->queue.try_push(std::move(request));
      MC_ASSERT(admit == serve::RequestQueue::Admit::kAdmitted,
                "below the watermark nothing is shed");
    }
    w->queue.close();
  }};
  mc::Thread c1{[w] { consumer(w, 0); }};
  mc::Thread c2{[w] { consumer(w, 1); }};
  producer.join();
  c1.join();
  c2.join();

  MC_ASSERT(w->popped[0].read() + w->popped[1].read() == 2,
            "every admitted request reached exactly one consumer");
  MC_ASSERT(w->queue.offered() == 2 && w->queue.admitted() == 2 &&
                w->queue.shed() == 0,
            "admission counters reconcile");
  MC_ASSERT(w->queue.depth() == 0, "the backlog fully drained");
}

}  // namespace

int main(int argc, char** argv) {
  return autopn::mc_harness::run(argc, argv, "mc_request_queue", body);
}
