// Transactional container semantics: TArray slot independence and TMap
// bucket-granular copy-on-write behaviour.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "stm/containers.hpp"
#include "stm/stm.hpp"

namespace autopn::stm {
namespace {

StmConfig cfg() {
  StmConfig c;
  c.pool_threads = 2;
  c.initial_top = 4;
  c.initial_children = 4;
  return c;
}

TEST(TArrayTest, InitAndSize) {
  TArray<int> arr{10, 7};
  EXPECT_EQ(arr.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(arr.peek(i), 7);
}

TEST(TArrayTest, ReadWriteRoundTrip) {
  Stm stm{cfg()};
  TArray<int> arr{4, 0};
  stm.run_top([&](Tx& tx) {
    arr.write(tx, 2, 42);
    EXPECT_EQ(arr.read(tx, 2), 42);
    EXPECT_EQ(arr.read(tx, 1), 0);
  });
  EXPECT_EQ(arr.peek(2), 42);
}

TEST(TArrayTest, OutOfRangeThrows) {
  Stm stm{cfg()};
  TArray<int> arr{2, 0};
  EXPECT_THROW(stm.run_top([&](Tx& tx) { (void)arr.read(tx, 5); }), std::out_of_range);
}

TEST(TArrayTest, DisjointSlotsNoConflict) {
  Stm stm{cfg()};
  TArray<int> arr{8, 0};
  std::vector<std::jthread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 100; ++i) {
        stm.run_top([&, t](Tx& tx) {
          const auto idx = static_cast<std::size_t>(t);
          arr.write(tx, idx, arr.read(tx, idx) + 1);
        });
      }
    });
  }
  threads.clear();
  // Disjoint slots: no top-level aborts expected at all.
  EXPECT_EQ(stm.stats().top_aborts, 0u);
  for (std::size_t t = 0; t < 4; ++t) EXPECT_EQ(arr.peek(t), 100);
}

TEST(TMapTest, PutGetErase) {
  Stm stm{cfg()};
  TMap<int, std::string> map{16};
  stm.run_top([&](Tx& tx) {
    EXPECT_FALSE(map.get(tx, 1).has_value());
    map.put(tx, 1, "one");
    map.put(tx, 2, "two");
    EXPECT_EQ(map.get(tx, 1).value(), "one");
    EXPECT_TRUE(map.contains(tx, 2));
    EXPECT_FALSE(map.contains(tx, 3));
  });
  stm.run_top([&](Tx& tx) {
    EXPECT_EQ(map.get(tx, 2).value(), "two");
    EXPECT_TRUE(map.erase(tx, 1));
    EXPECT_FALSE(map.erase(tx, 1));
  });
  stm.run_top([&](Tx& tx) {
    EXPECT_FALSE(map.contains(tx, 1));
    EXPECT_EQ(map.size(tx), 1u);
  });
}

TEST(TMapTest, OverwriteKeepsSingleEntry) {
  Stm stm{cfg()};
  TMap<int, int> map{4};
  stm.run_top([&](Tx& tx) {
    map.put(tx, 5, 1);
    map.put(tx, 5, 2);
    EXPECT_EQ(map.get(tx, 5).value(), 2);
    EXPECT_EQ(map.size(tx), 1u);
  });
}

TEST(TMapTest, CollidingKeysShareBucket) {
  Stm stm{cfg()};
  TMap<int, int> map{1};  // force all keys into one bucket
  stm.run_top([&](Tx& tx) {
    for (int k = 0; k < 10; ++k) map.put(tx, k, k * k);
  });
  stm.run_top([&](Tx& tx) {
    for (int k = 0; k < 10; ++k) EXPECT_EQ(map.get(tx, k).value(), k * k);
    EXPECT_EQ(map.size(tx), 10u);
  });
}

TEST(TMapTest, ForEachVisitsAll) {
  Stm stm{cfg()};
  TMap<int, int> map{8};
  stm.run_top([&](Tx& tx) {
    for (int k = 0; k < 5; ++k) map.put(tx, k, 2 * k);
  });
  int sum_keys = 0;
  int sum_vals = 0;
  stm.run_top([&](Tx& tx) {
    map.for_each(tx, [&](const int& k, const int& v) {
      sum_keys += k;
      sum_vals += v;
    });
  });
  EXPECT_EQ(sum_keys, 10);
  EXPECT_EQ(sum_vals, 20);
}

TEST(TMapTest, ZeroBucketsRejected) {
  EXPECT_THROW((TMap<int, int>{0}), std::invalid_argument);
}

TEST(TMapTest, AbortDiscardsMapChanges) {
  Stm stm{cfg()};
  TMap<int, int> map{8};
  stm.run_top([&](Tx& tx) { map.put(tx, 1, 10); });
  EXPECT_THROW(stm.run_top([&](Tx& tx) {
    map.put(tx, 2, 20);
    map.erase(tx, 1);
    throw std::runtime_error{"abort"};
  }),
               std::runtime_error);
  stm.run_top([&](Tx& tx) {
    EXPECT_TRUE(map.contains(tx, 1));
    EXPECT_FALSE(map.contains(tx, 2));
  });
}

TEST(TMapTest, ConcurrentDisjointBucketWrites) {
  Stm stm{cfg()};
  TMap<int, int> map{64};
  std::vector<std::jthread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        stm.run_top([&, t](Tx& tx) { map.put(tx, t * 1000 + i, i); });
      }
    });
  }
  threads.clear();
  stm.run_top([&](Tx& tx) { EXPECT_EQ(map.size(tx), 200u); });
}

TEST(TQueueTest, FifoOrder) {
  Stm stm{cfg()};
  TQueue<int> queue{8};
  stm.run_top([&](Tx& tx) {
    EXPECT_TRUE(queue.empty(tx));
    EXPECT_TRUE(queue.push(tx, 1));
    EXPECT_TRUE(queue.push(tx, 2));
    EXPECT_TRUE(queue.push(tx, 3));
    EXPECT_EQ(queue.size(tx), 3u);
    EXPECT_EQ(queue.front(tx).value(), 1);
    EXPECT_EQ(queue.pop(tx).value(), 1);
    EXPECT_EQ(queue.pop(tx).value(), 2);
    EXPECT_EQ(queue.pop(tx).value(), 3);
    EXPECT_FALSE(queue.pop(tx).has_value());
  });
}

TEST(TQueueTest, CapacityBound) {
  Stm stm{cfg()};
  TQueue<int> queue{2};
  stm.run_top([&](Tx& tx) {
    EXPECT_TRUE(queue.push(tx, 1));
    EXPECT_TRUE(queue.push(tx, 2));
    EXPECT_FALSE(queue.push(tx, 3));  // full
    (void)queue.pop(tx);
    EXPECT_TRUE(queue.push(tx, 3));  // slot freed
  });
  EXPECT_EQ(queue.peek_size(), 2u);
}

TEST(TQueueTest, WrapsAroundRing) {
  Stm stm{cfg()};
  TQueue<int> queue{3};
  for (int round = 0; round < 10; ++round) {
    stm.run_top([&](Tx& tx) {
      EXPECT_TRUE(queue.push(tx, round));
      EXPECT_EQ(queue.pop(tx).value(), round);
    });
  }
  EXPECT_EQ(queue.peek_size(), 0u);
}

TEST(TQueueTest, AbortDiscardsOperations) {
  Stm stm{cfg()};
  TQueue<int> queue{4};
  stm.run_top([&](Tx& tx) { (void)queue.push(tx, 1); });
  EXPECT_THROW(stm.run_top([&](Tx& tx) {
    (void)queue.pop(tx);
    (void)queue.push(tx, 99);
    throw std::runtime_error{"abort"};
  }),
               std::runtime_error);
  stm.run_top([&](Tx& tx) {
    EXPECT_EQ(queue.size(tx), 1u);
    EXPECT_EQ(queue.front(tx).value(), 1);
  });
}

TEST(TQueueTest, ConcurrentProducersConsumersConserveItems) {
  Stm stm{cfg()};
  TQueue<int> queue{64};
  constexpr int kPerProducer = 50;
  std::atomic<int> consumed{0};
  std::atomic<long long> consumed_sum{0};
  std::atomic<bool> producers_done{false};
  std::vector<std::jthread> threads;
  for (int p = 0; p < 2; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int item = p * 1000 + i;
        bool pushed = false;
        while (!pushed) {
          stm.run_top([&](Tx& tx) { pushed = queue.push(tx, item); });
        }
      }
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      while (true) {
        std::optional<int> item;
        stm.run_top([&](Tx& tx) { item = queue.pop(tx); });
        if (item.has_value()) {
          consumed.fetch_add(1);
          consumed_sum.fetch_add(*item);
        } else if (producers_done.load()) {
          // Drain check: another empty pop after producers finished => done.
          bool empty = false;
          stm.run_top([&](Tx& tx) { empty = queue.empty(tx); });
          if (empty) return;
        }
      }
    });
  }
  threads[0].join();
  threads[1].join();
  producers_done.store(true);
  threads.clear();
  EXPECT_EQ(consumed.load(), 2 * kPerProducer);
  long long expected_sum = 0;
  for (int p = 0; p < 2; ++p) {
    for (int i = 0; i < kPerProducer; ++i) expected_sum += p * 1000 + i;
  }
  EXPECT_EQ(consumed_sum.load(), expected_sum);
  EXPECT_EQ(queue.peek_size(), 0u);
}

TEST(TQueueTest, ZeroCapacityRejected) {
  EXPECT_THROW((TQueue<int>{0}), std::invalid_argument);
}

TEST(TMapTest, NestedChildrenPopulateMap) {
  Stm stm{cfg()};
  TMap<int, int> map{32};
  stm.run_top([&](Tx& tx) {
    std::vector<std::function<void(Tx&)>> kids;
    for (int k = 0; k < 8; ++k) {
      kids.emplace_back([&map, k](Tx& child) { map.put(child, k, k + 100); });
    }
    tx.run_children(std::move(kids));
    EXPECT_EQ(map.size(tx), 8u);
  });
  stm.run_top([&](Tx& tx) {
    for (int k = 0; k < 8; ++k) EXPECT_EQ(map.get(tx, k).value(), k + 100);
  });
}

}  // namespace
}  // namespace autopn::stm
