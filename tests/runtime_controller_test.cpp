// Live end-to-end tests: the tuning controller driving a real Stm with
// application threads executing transactions concurrently.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "opt/autopn_optimizer.hpp"
#include "opt/baselines.hpp"
#include "runtime/controller.hpp"
#include "workloads/array_bench.hpp"

namespace autopn::runtime {
namespace {

stm::StmConfig live_config() {
  stm::StmConfig cfg;
  cfg.max_cores = 4;
  cfg.pool_threads = 2;
  cfg.initial_top = 2;
  cfg.initial_children = 1;
  return cfg;
}

TEST(Actuator, AppliesAndReportsConfig) {
  stm::Stm stm{live_config()};
  Actuator actuator{stm};
  actuator.apply(opt::Config{3, 2});
  EXPECT_EQ(stm.top_limit(), 3u);
  EXPECT_EQ(stm.child_limit(), 2u);
  EXPECT_EQ(actuator.current(), (opt::Config{3, 2}));
}

TEST(Actuator, InhibitedActuatorLeavesStmAlone) {
  stm::Stm stm{live_config()};
  Actuator actuator{stm};
  actuator.set_enabled(false);
  actuator.apply(opt::Config{4, 4});
  EXPECT_EQ(stm.top_limit(), 2u);   // unchanged
  EXPECT_EQ(stm.child_limit(), 1u);
  EXPECT_EQ(actuator.current(), (opt::Config{4, 4}));  // still remembered
}

/// Drives the Array workload from background threads until stopped.
class WorkloadDriver {
 public:
  WorkloadDriver(workloads::ArrayBenchmark& bench, int threads) {
    for (int i = 0; i < threads; ++i) {
      threads_.emplace_back([this, &bench, i] {
        util::Rng rng{static_cast<std::uint64_t>(1000 + i)};
        while (!stop_.load(std::memory_order_relaxed)) bench.run_one(rng);
      });
    }
  }
  ~WorkloadDriver() { stop_.store(true); }

 private:
  std::atomic<bool> stop_{false};
  std::vector<std::jthread> threads_;
};

TEST(Controller, MeasuresLiveThroughput) {
  stm::Stm stm{live_config()};
  workloads::ArrayConfig acfg;
  acfg.array_size = 64;
  workloads::ArrayBenchmark bench{stm, acfg};
  WorkloadDriver driver{bench, 2};

  util::WallClock clock;
  opt::ConfigSpace space{4};
  ControllerParams params;
  params.max_window_seconds = 2.0;
  TuningController controller{
      stm, std::make_unique<opt::GridSearch>(space),
      std::make_unique<FixedTimePolicy>(0.05), clock, params};
  const Measurement m = controller.measure_once();
  EXPECT_GT(m.commits, 0u);
  EXPECT_GT(m.throughput, 0.0);
}

TEST(Controller, TunesWithGridSearchLive) {
  stm::Stm stm{live_config()};
  workloads::ArrayConfig acfg;
  acfg.array_size = 64;
  workloads::ArrayBenchmark bench{stm, acfg};
  WorkloadDriver driver{bench, 2};

  util::WallClock clock;
  opt::ConfigSpace space{4};
  ControllerParams params;
  params.max_window_seconds = 1.0;
  TuningController controller{
      stm, std::make_unique<opt::GridSearch>(space),
      std::make_unique<FixedTimePolicy>(0.02), clock, params};
  const TuningReport report = controller.tune();
  EXPECT_GT(report.explorations, 0u);
  EXPECT_TRUE(space.valid(report.chosen));
  // The winning configuration was actually applied.
  EXPECT_EQ(static_cast<int>(stm.top_limit()), report.chosen.t);
  EXPECT_EQ(static_cast<int>(stm.child_limit()), report.chosen.c);
}

TEST(Controller, AutoPnLiveEndToEnd) {
  stm::Stm stm{live_config()};
  workloads::ArrayConfig acfg;
  acfg.array_size = 32;
  workloads::ArrayBenchmark bench{stm, acfg};
  WorkloadDriver driver{bench, 2};

  util::WallClock clock;
  opt::ConfigSpace space{4};
  opt::AutoPnParams ap;
  ap.bootstrap_points = 9;
  ControllerParams params;
  params.max_window_seconds = 1.0;
  TuningController controller{
      stm, std::make_unique<opt::AutoPnOptimizer>(space, ap, 1),
      std::make_unique<CvAdaptivePolicy>(0.25, 3), clock, params};
  const TuningReport report = controller.tune();
  EXPECT_TRUE(space.valid(report.chosen));
  EXPECT_GE(report.explorations, 3u);
  EXPECT_LE(report.explorations, space.size());
  // Observations carry positive KPIs (the workload was live).
  std::size_t positive = 0;
  for (const auto& obs : report.observations) positive += obs.kpi > 0.0;
  EXPECT_GT(positive, report.observations.size() / 2);
}

TEST(Controller, InhibitedActuationStillTunes) {
  // §VII-E methodology: monitoring + modeling active, actuator inhibited.
  stm::Stm stm{live_config()};
  workloads::ArrayConfig acfg;
  acfg.array_size = 32;
  workloads::ArrayBenchmark bench{stm, acfg};
  WorkloadDriver driver{bench, 2};

  util::WallClock clock;
  opt::ConfigSpace space{4};
  ControllerParams params;
  params.actuate = false;
  params.max_window_seconds = 1.0;
  TuningController controller{
      stm, std::make_unique<opt::GridSearch>(space),
      std::make_unique<FixedTimePolicy>(0.02), clock, params};
  (void)controller.tune();
  // Limits never moved off their initial values.
  EXPECT_EQ(stm.top_limit(), 2u);
  EXPECT_EQ(stm.child_limit(), 1u);
}

TEST(Controller, AbortRateKpiPrefersLowContentionConfigs) {
  // With the abort-rate KPI (commit efficiency), the tuner should gravitate
  // to low top-level parallelism on a contended workload.
  stm::Stm stm{live_config()};
  workloads::ArrayConfig acfg;
  acfg.array_size = 64;
  acfg.update_fraction = 0.9;  // whole-array scans conflict heavily
  workloads::ArrayBenchmark bench{stm, acfg};
  WorkloadDriver driver{bench, 3};

  util::WallClock clock;
  opt::ConfigSpace space{4};
  ControllerParams params;
  params.kpi = KpiKind::kAbortRate;
  params.max_window_seconds = 0.5;
  TuningController controller{stm, std::make_unique<opt::GridSearch>(space),
                              std::make_unique<FixedTimePolicy>(0.05), clock,
                              params};
  const auto report = controller.tune();
  // Every observation is a commit-efficiency in [0, 1].
  for (const auto& obs : report.observations) {
    EXPECT_GE(obs.kpi, 0.0);
    EXPECT_LE(obs.kpi, 1.0);
  }
  EXPECT_TRUE(space.valid(report.chosen));
}

TEST(Controller, LatencyKpiMatchesThroughputOrdering) {
  stm::Stm stm{live_config()};
  workloads::ArrayConfig acfg;
  acfg.array_size = 32;
  workloads::ArrayBenchmark bench{stm, acfg};
  WorkloadDriver driver{bench, 2};

  util::WallClock clock;
  opt::ConfigSpace space{4};
  ControllerParams params;
  params.kpi = KpiKind::kLatency;
  params.max_window_seconds = 0.5;
  TuningController controller{stm, std::make_unique<opt::GridSearch>(space),
                              std::make_unique<FixedTimePolicy>(0.02), clock,
                              params};
  const auto report = controller.tune();
  EXPECT_GT(report.explorations, 0u);
  for (const auto& obs : report.observations) EXPECT_GE(obs.kpi, 0.0);
}

TEST(Controller, TuneAndWatchRunsAtLeastOneRound) {
  stm::Stm stm{live_config()};
  workloads::ArrayConfig acfg;
  acfg.array_size = 32;
  workloads::ArrayBenchmark bench{stm, acfg};
  WorkloadDriver driver{bench, 2};

  util::WallClock clock;
  opt::ConfigSpace space{4};
  ControllerParams params;
  params.max_window_seconds = 0.5;
  TuningController controller{stm, std::make_unique<opt::GridSearch>(space),
                              std::make_unique<FixedTimePolicy>(0.01), clock,
                              params};
  const std::size_t rounds = controller.tune_and_watch(
      [&space] { return std::make_unique<opt::GridSearch>(space); },
      /*duration_seconds=*/0.3);
  EXPECT_GE(rounds, 1u);
  EXPECT_TRUE(space.valid(controller.actuator().current()));
}

TEST(Controller, TuneAndWatchRetunesOnWorkloadShift) {
  // Start with a light workload; after the first tuning round, switch the
  // drivers to a heavy-contention variant — the throughput shift must fire
  // CUSUM and trigger a second tuning round.
  stm::Stm stm{live_config()};
  workloads::ArrayConfig light_cfg;
  light_cfg.array_size = 32;
  light_cfg.update_fraction = 0.0;
  workloads::ArrayBenchmark light{stm, light_cfg};
  workloads::ArrayConfig heavy_cfg;
  heavy_cfg.array_size = 512;
  heavy_cfg.update_fraction = 0.9;
  workloads::ArrayBenchmark heavy{stm, heavy_cfg};

  std::atomic<bool> shifted{false};
  std::atomic<bool> stop{false};
  std::vector<std::jthread> drivers;
  for (int i = 0; i < 2; ++i) {
    drivers.emplace_back([&, i] {
      util::Rng rng{static_cast<std::uint64_t>(3000 + i)};
      while (!stop.load()) {
        if (shifted.load()) {
          heavy.run_one(rng);
        } else {
          light.run_one(rng);
        }
      }
    });
  }

  util::WallClock clock;
  opt::ConfigSpace space{4};
  ControllerParams params;
  params.max_window_seconds = 0.5;
  TuningController controller{stm, std::make_unique<opt::GridSearch>(space),
                              std::make_unique<FixedTimePolicy>(0.02), clock,
                              params};
  // Flip the workload shortly into the watch phase.
  std::jthread shifter{[&] {
    std::this_thread::sleep_for(std::chrono::milliseconds{400});
    shifted.store(true);
  }};
  const std::size_t rounds = controller.tune_and_watch(
      [&space] { return std::make_unique<opt::GridSearch>(space); },
      /*duration_seconds=*/2.5);
  stop.store(true);
  drivers.clear();
  EXPECT_GE(rounds, 2u);  // the shift forced at least one re-tuning
}

/// Hands out a fixed batch of request latencies on every drain.
class FakeLatencySource final : public LatencySource {
 public:
  explicit FakeLatencySource(std::vector<double> batch) : batch_(std::move(batch)) {}
  std::vector<double> drain_latencies() override {
    ++drains_;
    return batch_;
  }
  [[nodiscard]] int drains() const noexcept { return drains_; }

 private:
  std::vector<double> batch_;
  int drains_ = 0;
};

TEST(Controller, LatencySourceSamplesOverrideWindowGaps) {
  stm::Stm stm{live_config()};
  workloads::ArrayConfig acfg;
  acfg.array_size = 64;
  workloads::ArrayBenchmark bench{stm, acfg};
  WorkloadDriver driver{bench, 2};

  util::WallClock clock;
  opt::ConfigSpace space{4};
  ControllerParams params;
  params.max_window_seconds = 2.0;
  TuningController controller{
      stm, std::make_unique<opt::GridSearch>(space),
      std::make_unique<FixedTimePolicy>(0.05), clock, params};
  FakeLatencySource source{std::vector<double>(100, 0.010)};
  controller.set_latency_source(&source);

  const Measurement m = controller.measure_once();
  // Drained twice: once to discard pre-window samples, once at window end.
  EXPECT_EQ(source.drains(), 2);
  EXPECT_EQ(m.latency_samples, 100u);
  EXPECT_NEAR(m.mean_latency, 0.010, 1e-9);
  EXPECT_NEAR(m.p99_latency, 0.010, 1e-9);
}

TEST(Controller, LatencyKpiUsesRequestLatencies) {
  stm::Stm stm{live_config()};
  workloads::ArrayConfig acfg;
  acfg.array_size = 64;
  workloads::ArrayBenchmark bench{stm, acfg};
  WorkloadDriver driver{bench, 2};

  util::WallClock clock;
  opt::ConfigSpace space{4};
  ControllerParams params;
  params.kpi = KpiKind::kLatency;
  params.max_window_seconds = 1.0;
  TuningController controller{
      stm, std::make_unique<opt::GridSearch>(space),
      std::make_unique<FixedTimePolicy>(0.02), clock, params};
  FakeLatencySource source{std::vector<double>(10, 0.004)};
  controller.set_latency_source(&source);

  const auto report = controller.tune();
  ASSERT_FALSE(report.observations.empty());
  // Every window saw the 4 ms request latency => KPI = 1/0.004 = 250.
  for (const auto& obs : report.observations) EXPECT_NEAR(obs.kpi, 250.0, 1e-6);
}

/// Advisor stub: predicts a high KPI for low-t configurations and a low one
/// for everything else (any fixed scale works — the controller only ever
/// compares two predictions).
class LowTAdvisor final : public ConfigAdvisor {
 public:
  double predicted_kpi(const opt::Config& config) override {
    return config.t <= 2 ? 1.0 : 0.1;
  }
};

TEST(Controller, ModelVetoBlocksPredictedRegressions) {
  stm::Stm stm{live_config()};
  workloads::ArrayConfig acfg;
  acfg.array_size = 64;
  workloads::ArrayBenchmark bench{stm, acfg};
  WorkloadDriver driver{bench, 2};

  util::WallClock clock;
  opt::ConfigSpace space{4};
  ControllerParams params;
  params.max_window_seconds = 1.0;
  params.model_veto_band = 0.5;
  params.model_veto_blocks = true;
  TuningController controller{
      stm, std::make_unique<opt::GridSearch>(space),
      std::make_unique<FixedTimePolicy>(0.02), clock, params};
  LowTAdvisor advisor;
  controller.set_config_advisor(&advisor);

  const TuningReport report = controller.tune();
  const VetoReport& vetoes = controller.vetoes();
  // The space contains t > 2 configurations; each is flagged AND blocked
  // (ratio 0.1 < 1 - band), so none of them burned a live window.
  EXPECT_GE(vetoes.flagged, 1u);
  EXPECT_EQ(vetoes.blocked, vetoes.flagged);
  for (const auto& obs : report.observations) EXPECT_LE(obs.config.t, 2);
  EXPECT_LE(report.chosen.t, 2);
  for (const auto& event : vetoes.events) {
    EXPECT_GT(event.proposal.t, 2);
    EXPECT_LT(event.predicted_ratio, 0.5);
    EXPECT_TRUE(event.blocked);
  }
}

TEST(Controller, ModelVetoLogsWithoutBlockingByDefault) {
  stm::Stm stm{live_config()};
  workloads::ArrayConfig acfg;
  acfg.array_size = 64;
  workloads::ArrayBenchmark bench{stm, acfg};
  WorkloadDriver driver{bench, 2};

  util::WallClock clock;
  opt::ConfigSpace space{4};
  ControllerParams params;
  params.max_window_seconds = 1.0;
  params.model_veto_band = 0.5;  // model_veto_blocks stays false
  TuningController controller{
      stm, std::make_unique<opt::GridSearch>(space),
      std::make_unique<FixedTimePolicy>(0.02), clock, params};
  LowTAdvisor advisor;
  controller.set_config_advisor(&advisor);

  const TuningReport report = controller.tune();
  EXPECT_GE(controller.vetoes().flagged, 1u);
  EXPECT_EQ(controller.vetoes().blocked, 0u);
  // Advisory mode: every configuration was still measured live.
  EXPECT_EQ(report.explorations, space.size());
}

TEST(Controller, NoAdvisorOrZeroBandNeverVetoes) {
  stm::Stm stm{live_config()};
  workloads::ArrayConfig acfg;
  acfg.array_size = 64;
  workloads::ArrayBenchmark bench{stm, acfg};
  WorkloadDriver driver{bench, 2};

  util::WallClock clock;
  opt::ConfigSpace space{4};
  ControllerParams params;
  params.max_window_seconds = 1.0;  // model_veto_band stays 0
  TuningController controller{
      stm, std::make_unique<opt::GridSearch>(space),
      std::make_unique<FixedTimePolicy>(0.02), clock, params};
  LowTAdvisor advisor;
  controller.set_config_advisor(&advisor);  // attached but band disables it
  (void)controller.tune();
  EXPECT_EQ(controller.vetoes().flagged, 0u);
  EXPECT_EQ(controller.vetoes().blocked, 0u);
}

TEST(Controller, ChangeDetectorRoundTrip) {
  stm::Stm stm{live_config()};
  util::WallClock clock;
  opt::ConfigSpace space{4};
  TuningController controller{
      stm, std::make_unique<opt::GridSearch>(space),
      std::make_unique<FixedTimePolicy>(0.01), clock, {}};
  controller.arm_change_detector(100.0);
  EXPECT_FALSE(controller.check_for_change(101.0));
  bool detected = false;
  for (int i = 0; i < 20 && !detected; ++i) {
    detected = controller.check_for_change(160.0);
  }
  EXPECT_TRUE(detected);
}

}  // namespace
}  // namespace autopn::runtime
