// Tests for the admission-queue submodel: the finite shedding M/M/c chain
// must reduce to the textbook closed forms in the limits (M/M/1 waiting
// time, M/M/1/K blocking, Erlang-C), behave monotonically in the offered
// load, and invert its own waiting-time CDF consistently.
#include <gtest/gtest.h>

#include <cmath>

#include "model/queue.hpp"

namespace autopn::model {
namespace {

TEST(PoissonCdf, KnownValues) {
  // P(N < 1) = P(N = 0) = e^-x.
  EXPECT_NEAR(poisson_cdf_below(1, 2.0), std::exp(-2.0), 1e-12);
  // P(N < 3) for Poisson(2): e^-2 (1 + 2 + 2) = 5 e^-2.
  EXPECT_NEAR(poisson_cdf_below(3, 2.0), 5.0 * std::exp(-2.0), 1e-12);
  // Degenerate edges.
  EXPECT_DOUBLE_EQ(poisson_cdf_below(0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(poisson_cdf_below(3, 0.0), 1.0);
}

TEST(PoissonCdf, NormalApproximationRegime) {
  // Beyond x = 700 the exact series would underflow and the implementation
  // switches to a continuity-corrected normal approximation. At the median
  // (m ~ x) the CDF must sit near 1/2, and the far tails must saturate.
  EXPECT_NEAR(poisson_cdf_below(750, 750.0), 0.5, 0.03);
  EXPECT_LT(poisson_cdf_below(1, 800.0), 1e-6);
  EXPECT_GT(poisson_cdf_below(2000, 800.0), 1.0 - 1e-6);
  // The two evaluation paths agree where they hand over (same m, nearby x).
  EXPECT_NEAR(poisson_cdf_below(700, 699.0), poisson_cdf_below(700, 701.0),
              0.05);
}

TEST(QueueSolution, MatchesMm1MeanWait) {
  // c = 1 with a huge waiting room is plain M/M/1: Wq = rho / (mu - lambda).
  QueueParams params;
  params.arrival_rate = 50.0;
  params.service_rate = 100.0;
  params.servers = 1;
  params.watermark = 2000;
  const QueueSolution s = solve_queue(params);
  EXPECT_LT(s.shed_probability(), 1e-12);
  EXPECT_NEAR(s.accepted_rate(), 50.0, 1e-6);
  EXPECT_NEAR(s.utilization(), 0.5, 1e-9);
  EXPECT_NEAR(s.mean_wait(), 0.5 / (100.0 - 50.0), 1e-9);
  // P(wait > 0) = rho for M/M/1 (PASTA).
  EXPECT_NEAR(s.wait_probability(), 0.5, 1e-9);
}

TEST(QueueSolution, MatchesMm1WaitQuantile) {
  // M/M/1 waiting time: P(Wq <= w) = 1 - rho e^{-(mu-lambda) w}, so the
  // q-quantile (q > 1 - rho) is ln(rho / (1-q)) / (mu - lambda).
  QueueParams params;
  params.arrival_rate = 50.0;
  params.service_rate = 100.0;
  params.servers = 1;
  params.watermark = 2000;
  const QueueSolution s = solve_queue(params);
  const double rho = 0.5;
  for (const double q : {0.6, 0.9, 0.99}) {
    const double expected = std::log(rho / (1.0 - q)) / (100.0 - 50.0);
    EXPECT_NEAR(s.wait_quantile(q), expected, expected * 1e-3 + 1e-9)
        << "q=" << q;
  }
  // Below the atom at zero (q <= 1 - rho) the quantile is exactly 0.
  EXPECT_DOUBLE_EQ(s.wait_quantile(0.4), 0.0);
}

TEST(QueueSolution, MatchesMm1kBlocking) {
  // servers = 1, watermark = K blocks arrivals at n = K + 1 in system, i.e.
  // M/M/1/N with N = K + 1: P_block = (1-rho) rho^N / (1 - rho^{N+1}).
  QueueParams params;
  params.arrival_rate = 80.0;
  params.service_rate = 100.0;
  params.servers = 1;
  params.watermark = 4;
  const QueueSolution s = solve_queue(params);
  const double rho = 0.8;
  const int n = 5;
  const double expected = (1.0 - rho) * std::pow(rho, n) /
                          (1.0 - std::pow(rho, n + 1));
  EXPECT_NEAR(s.shed_probability(), expected, 1e-12);
  EXPECT_NEAR(s.accepted_rate(), 80.0 * (1.0 - expected), 1e-9);
}

TEST(QueueSolution, MatchesErlangCWaitProbability) {
  // c = 4, a = lambda/mu = 3, rho = 0.75: Erlang-C gives P(wait) ~ 0.509434
  // and Wq = C / (c mu - lambda).
  QueueParams params;
  params.arrival_rate = 300.0;
  params.service_rate = 100.0;
  params.servers = 4;
  params.watermark = 4000;
  const QueueSolution s = solve_queue(params);
  const double a = 3.0;
  const double rho = 0.75;
  double denom = 0.0;
  double term = 1.0;  // a^k / k!
  for (int k = 0; k < 4; ++k) {
    denom += term;
    term *= a / (k + 1);
  }
  const double erlang_c = term / (1.0 - rho) / (denom + term / (1.0 - rho));
  EXPECT_NEAR(s.wait_probability(), erlang_c, 1e-6);
  EXPECT_NEAR(s.mean_wait(), erlang_c / (400.0 - 300.0), 1e-8);
  EXPECT_NEAR(s.utilization(), rho, 1e-9);
}

TEST(QueueSolution, ShedAndWaitMonotoneInArrivalRate) {
  QueueParams params;
  params.service_rate = 100.0;
  params.servers = 2;
  params.watermark = 8;
  double prev_shed = -1.0;
  double prev_wait = -1.0;
  for (double lambda = 50.0; lambda <= 500.0; lambda += 50.0) {
    params.arrival_rate = lambda;
    const QueueSolution s = solve_queue(params);
    EXPECT_GE(s.shed_probability(), prev_shed) << "lambda=" << lambda;
    EXPECT_GE(s.mean_wait(), prev_wait - 1e-12) << "lambda=" << lambda;
    EXPECT_GE(s.shed_probability(), 0.0);
    EXPECT_LE(s.shed_probability(), 1.0);
    EXPECT_LE(s.utilization(), 1.0 + 1e-12);
    prev_shed = s.shed_probability();
    prev_wait = s.mean_wait();
  }
  // Far beyond saturation nearly everything is shed.
  params.arrival_rate = 1e5;
  EXPECT_GT(solve_queue(params).shed_probability(), 0.99);
}

TEST(QueueSolution, QuantilesMonotoneInQ) {
  QueueParams params;
  params.arrival_rate = 180.0;
  params.service_rate = 100.0;
  params.servers = 2;
  params.watermark = 32;
  const QueueSolution s = solve_queue(params);
  const double q50 = s.wait_quantile(0.5);
  const double q90 = s.wait_quantile(0.9);
  const double q99 = s.wait_quantile(0.99);
  EXPECT_GE(q50, 0.0);
  EXPECT_LE(q50, q90);
  EXPECT_LE(q90, q99);
  EXPECT_GT(q99, 0.0);
}

TEST(QueueSolution, DegenerateInputsAreClamped) {
  // Zero rate, zero servers, zero watermark: solve_queue clamps instead of
  // rejecting so parameter sweeps need no edge guards.
  QueueParams params;
  params.arrival_rate = 0.0;
  params.service_rate = 0.0;
  params.servers = 0;
  params.watermark = 0;
  const QueueSolution s = solve_queue(params);
  EXPECT_GE(s.shed_probability(), 0.0);
  EXPECT_LE(s.shed_probability(), 1.0);
  EXPECT_GE(s.mean_wait(), 0.0);
  EXPECT_DOUBLE_EQ(s.wait_quantile(0.5), s.wait_quantile(0.5));  // not NaN
}

}  // namespace
}  // namespace autopn::model
