// CommitManager unit tests, exercising both protocols directly against a
// standalone clock + SnapshotRegistry + ContentionProfiler — no Stm, no Tx —
// to pin down the serialization contract: versions are dense, validation
// rejects stale reads, conflicts are attributed to the profiler, and pruning
// respects the registry's minimum.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "stm/commit_manager.hpp"
#include "stm/exceptions.hpp"
#include "stm/snapshot_registry.hpp"
#include "stm/stats.hpp"
#include "stm/vbox.hpp"

namespace autopn::stm {
namespace {

class CommitManagerTest : public ::testing::TestWithParam<CommitStrategy> {
 protected:
  CommitManagerTest()
      : registry_(clock_),
        manager_(make_commit_manager(GetParam(), clock_, registry_,
                                     profiler_)) {}

  static CommitRequest write_request(std::uint64_t snapshot, VBoxBase& box,
                                     int value) {
    CommitRequest req;
    req.snapshot = snapshot;
    req.writes.emplace_back(&box, std::make_shared<const int>(value));
    return req;
  }

  std::atomic<std::uint64_t> clock_{0};
  SnapshotRegistry registry_;
  ContentionProfiler profiler_;
  std::unique_ptr<CommitManager> manager_;
};

TEST_P(CommitManagerTest, FactoryBuildsRequestedProtocol) {
  const auto expected =
      GetParam() == CommitStrategy::kGlobalLock ? "global-lock" : "lock-free";
  EXPECT_EQ(manager_->name(), expected);
  if (GetParam() == CommitStrategy::kGlobalLock) {
    EXPECT_FALSE(manager_->serialization_lock_free());
  }
}

TEST_P(CommitManagerTest, CommitInstallsAtNextVersionAndPublishesClock) {
  VBox<int> box;
  for (int i = 1; i <= 5; ++i) {
    auto req = write_request(clock_.load(), box, i);
    manager_->commit(req);
    EXPECT_EQ(clock_.load(), static_cast<std::uint64_t>(i));
    EXPECT_EQ(box.newest_version(), static_cast<std::uint64_t>(i));
    EXPECT_EQ(box.peek(), i);
  }
}

TEST_P(CommitManagerTest, StaleReadThrowsAndReportsHotspot) {
  VBox<int> read_box{1};
  read_box.set_label("stale-box");
  VBox<int> write_box{0};
  profiler_.set_enabled(true);

  const std::uint64_t snapshot = clock_.load();
  // Another transaction commits to read_box, making our snapshot stale.
  auto other = write_request(snapshot, read_box, 7);
  manager_->commit(other);

  CommitRequest req = write_request(snapshot, write_box, 9);
  req.read_boxes.push_back(&read_box);
  try {
    manager_->commit(req);
    FAIL() << "expected ConflictError";
  } catch (const ConflictError& conflict) {
    EXPECT_EQ(conflict.kind(), ConflictKind::kTopLevelValidation);
  }
  // The failed commit installed nothing and did not advance the clock.
  EXPECT_EQ(write_box.peek(), 0);
  EXPECT_EQ(clock_.load(), 1u);

  const auto hotspots = profiler_.hotspots();
  ASSERT_EQ(hotspots.size(), 1u);
  EXPECT_EQ(hotspots[0].label, "stale-box");
  EXPECT_EQ(hotspots[0].conflicts, 1u);
}

TEST_P(CommitManagerTest, ReadsAtCurrentSnapshotPassValidation) {
  VBox<int> box{5};
  auto setup = write_request(clock_.load(), box, 6);
  manager_->commit(setup);

  VBox<int> target{0};
  CommitRequest req = write_request(clock_.load(), target, 1);
  req.read_boxes.push_back(&box);
  EXPECT_NO_THROW(manager_->commit(req));
  EXPECT_EQ(clock_.load(), 2u);
}

TEST_P(CommitManagerTest, ConcurrentDisjointCommitsClaimDenseVersions) {
  constexpr int kThreads = 4;
  constexpr int kCommitsPerThread = 200;
  std::vector<std::unique_ptr<VBox<int>>> boxes;
  for (int t = 0; t < kThreads; ++t) {
    boxes.push_back(std::make_unique<VBox<int>>(0));
  }

  std::vector<std::jthread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 1; i <= kCommitsPerThread; ++i) {
        for (;;) {
          auto handle = registry_.acquire();
          auto req = write_request(handle.snapshot(), *boxes[t], i);
          try {
            manager_->commit(req);
            break;
          } catch (const ConflictError&) {
            // Disjoint writes with empty read sets never conflict.
            FAIL() << "unexpected conflict on disjoint write sets";
          }
        }
      }
    });
  }
  threads.clear();

  // Every commit claimed exactly one version: the clock is dense.
  EXPECT_EQ(clock_.load(),
            static_cast<std::uint64_t>(kThreads * kCommitsPerThread));
  for (const auto& box : boxes) {
    EXPECT_EQ(box->peek(), kCommitsPerThread);
  }
}

TEST_P(CommitManagerTest, PruningRespectsRegistryMinimum) {
  VBox<int> box{0};
  // Hold a snapshot at version 1 while later versions are installed.
  auto first = write_request(clock_.load(), box, 1);
  manager_->commit(first);
  auto pinned = registry_.acquire();
  ASSERT_EQ(pinned.snapshot(), 1u);

  for (int i = 2; i <= 6; ++i) {
    auto req = write_request(clock_.load(), box, i);
    manager_->commit(req);
  }
  // The pinned snapshot must still resolve: version 1's body survived.
  const Body* body = box.body_at(1);
  ASSERT_NE(body, nullptr);
  EXPECT_EQ(*static_cast<const int*>(body->value.read().get()), 1);

  // While the pin was held the chain had to retain every body back to
  // version 1.
  EXPECT_GE(box.chain_length(), 6u);

  pinned.release();
  auto last = write_request(clock_.load(), box, 7);
  manager_->commit(last);
  // With the pin gone the chain collapses: just the new body plus at most one
  // older body still reachable from min_active (== the pre-commit clock).
  EXPECT_LE(box.chain_length(), 2u);
  EXPECT_EQ(box.body_at(1), nullptr);  // version 1 finally pruned
}

INSTANTIATE_TEST_SUITE_P(Strategies, CommitManagerTest,
                         ::testing::Values(CommitStrategy::kGlobalLock,
                                           CommitStrategy::kLockFree),
                         [](const ::testing::TestParamInfo<CommitStrategy>& info) {
                           return info.param == CommitStrategy::kGlobalLock
                                      ? "GlobalLock"
                                      : "LockFree";
                         });

}  // namespace
}  // namespace autopn::stm
