// Chaos tests of the network front-end: injected accept rejections, read
// faults (mid-request disconnects), and write faults must never crash the
// loop, leak a response, or break the wire-level ledger
//   requests_decoded == responses_enqueued ==
//   responses_written + responses_dropped
// — the engine-side accounting invariant extended to the socket edge.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/netload.hpp"
#include "net/server.hpp"
#include "serve/engine.hpp"
#include "stm/stm.hpp"
#include "util/clock.hpp"
#include "util/failpoint.hpp"

namespace autopn::net {
namespace {

using namespace std::chrono_literals;

stm::StmConfig small_stm() {
  stm::StmConfig cfg;
  cfg.max_cores = 4;
  cfg.pool_threads = 2;
  cfg.initial_top = 2;
  cfg.initial_children = 1;
  return cfg;
}

void expect_ledger_exact(const NetServerReport& report) {
  EXPECT_EQ(report.requests_decoded, report.responses_enqueued);
  EXPECT_EQ(report.responses_enqueued,
            report.responses_written + report.responses_dropped);
}

void expect_engine_invariant(const serve::ServeReport& report) {
  EXPECT_EQ(report.offered, report.admitted + report.shed);
  EXPECT_EQ(report.admitted,
            report.completed + report.expired + report.failed);
}

class NetChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!util::FailpointRegistry::compiled_in()) {
      GTEST_SKIP() << "failpoints compiled out";
    }
  }
  void TearDown() override {
    util::FailpointRegistry::instance().disarm_all();
  }
};

TEST_F(NetChaosTest, InjectedAcceptFaultRejectsConnectionsThenRecovers) {
  stm::Stm stm{small_stm()};
  util::WallClock clock;
  serve::ServeEngine engine{stm, [](util::Rng&) {}, clock, {}};
  NetServer server{engine, {}};

  // One-shot accept fault: the first connection attempt dies, later ones go
  // through — connect() either throws or yields a client whose handshake
  // never completes, depending on how fast the kernel surfaces the close.
  util::FailpointRegistry::instance().arm_from_string("net.accept=error(n=1)");
  try {
    auto doomed = Client::connect("127.0.0.1", server.port(), 0.5);
    (void)doomed.call(0, 0, 0, 0.5);
  } catch (const std::exception&) {
    // expected path: the server closed the socket before/after the accept
  }
  util::FailpointRegistry::instance().disarm_all();

  auto client = Client::connect("127.0.0.1", server.port());
  const auto response = client.call();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, Status::kOk);

  server.shutdown();
  const auto report = server.report();
  EXPECT_GE(report.rejected_accepts, 1u);
  expect_ledger_exact(report);
  expect_engine_invariant(engine.report());
}

TEST_F(NetChaosTest, ReadFaultsForceDisconnectsWithoutBreakingLedger) {
  stm::Stm stm{small_stm()};
  util::WallClock clock;
  serve::ServeConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 1024;
  serve::ServeEngine engine{stm, [](util::Rng&) {}, clock, cfg};
  NetServer server{engine, {}};

  // Every ~10th read attempt kills the connection — mid-request disconnect
  // chaos. netload keeps reconnecting and offering load throughout.
  util::FailpointRegistry::instance().arm_from_string(
      "net.read=error(p=0.1)");
  NetLoadParams params;
  params.port = server.port();
  params.connections = 3;
  params.rate = 600.0;
  params.duration = 0.5;
  params.drain_grace = 1.0;
  const auto result = run_netload(params);
  util::FailpointRegistry::instance().disarm_all();

  EXPECT_GT(result.sent, 0u);
  EXPECT_GT(result.io_errors, 0u);  // the chaos actually bit
  EXPECT_EQ(result.answered() + result.unanswered, result.sent);

  server.shutdown();
  const auto report = server.report();
  EXPECT_GT(report.disconnects, 0u);
  expect_ledger_exact(report);
  expect_engine_invariant(engine.report());
}

TEST_F(NetChaosTest, WriteFaultsDropResponsesAccountably) {
  stm::Stm stm{small_stm()};
  util::WallClock clock;
  serve::ServeConfig cfg;
  cfg.workers = 2;
  serve::ServeEngine engine{stm, [](util::Rng&) {}, clock, cfg};
  NetServer server{engine, {}};

  util::FailpointRegistry::instance().arm_from_string(
      "net.write=error(p=0.2)");
  NetLoadParams params;
  params.port = server.port();
  params.connections = 2;
  params.rate = 400.0;
  params.duration = 0.4;
  params.drain_grace = 1.0;
  const auto result = run_netload(params);
  util::FailpointRegistry::instance().disarm_all();

  EXPECT_GT(result.sent, 0u);

  server.shutdown();
  const auto report = server.report();
  // Responses that hit the write fault died with their connection — they
  // must all be accounted as dropped, never lost.
  EXPECT_GT(report.responses_dropped, 0u);
  expect_ledger_exact(report);
  expect_engine_invariant(engine.report());
}

TEST_F(NetChaosTest, SlowNetworkDelayInjectionStillCompletes) {
  stm::Stm stm{small_stm()};
  util::WallClock clock;
  serve::ServeEngine engine{stm, [](util::Rng&) {}, clock, {}};
  NetServer server{engine, {}};

  // Delay mode: every read stalls 2 ms (slow network), no failures.
  util::FailpointRegistry::instance().arm_from_string(
      "net.read=delay(d=2ms)");
  auto client = Client::connect("127.0.0.1", server.port());
  for (int i = 0; i < 10; ++i) {
    const auto response = client.call(0, 0, 0, 10.0);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, Status::kOk);
  }
  util::FailpointRegistry::instance().disarm_all();

  server.shutdown();
  const auto report = server.report();
  EXPECT_EQ(report.requests_decoded, 10u);
  expect_ledger_exact(report);
}

TEST_F(NetChaosTest, CombinedChurnSoakHoldsBothInvariants) {
  stm::Stm stm{small_stm()};
  util::WallClock clock;
  serve::ServeConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 256;
  cfg.shed_watermark = 64;
  serve::ServeEngine engine{stm, [](util::Rng&) {}, clock, cfg};
  NetServer server{engine, {}};

  util::FailpointRegistry::instance().arm_from_string(
      "net.accept=error(p=0.05);net.read=error(p=0.02);"
      "net.write=error(p=0.02)");
  NetLoadParams params;
  params.port = server.port();
  params.connections = 4;
  params.rate = 800.0;
  params.duration = 0.6;
  params.tenants = 3;
  params.drain_grace = 1.0;
  const auto result = run_netload(params);
  util::FailpointRegistry::instance().disarm_all();

  EXPECT_GT(result.sent, 0u);
  EXPECT_EQ(result.answered() + result.unanswered, result.sent);

  server.shutdown();
  expect_ledger_exact(server.report());
  expect_engine_invariant(engine.report());
}

}  // namespace
}  // namespace autopn::net
