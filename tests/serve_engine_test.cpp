// Tests for the serving engine: transactional execution, overload shedding,
// drain-on-shutdown with in-flight transactions, KPI-source windows, and the
// open-/closed-loop load generators.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "serve/engine.hpp"
#include "serve/handlers.hpp"
#include "serve/loadgen.hpp"
#include "util/thread_pool.hpp"

namespace autopn::serve {
namespace {

using namespace std::chrono_literals;

stm::StmConfig small_stm() {
  stm::StmConfig cfg;
  cfg.max_cores = 4;
  cfg.pool_threads = 2;
  cfg.initial_top = 2;
  cfg.initial_children = 1;
  return cfg;
}

/// Submits until `count` requests were admitted, waiting out shed periods.
void submit_admitted(ServeEngine& engine, std::size_t count,
                     RequestHandler work = {}) {
  std::size_t admitted = 0;
  while (admitted < count) {
    const auto r = engine.submit(work, {});
    if (r.admitted) {
      ++admitted;
    } else {
      std::this_thread::sleep_for(1ms);
    }
  }
}

TEST(ServeEngine, ExecutesRequestsAsTransactions) {
  stm::Stm stm{small_stm()};
  util::WallClock clock;
  auto workload = make_servable_workload("array", stm);
  ServeConfig cfg;
  cfg.workers = 2;
  ServeEngine engine{stm, workload.handler, clock, cfg};

  submit_admitted(engine, 50);
  engine.drain_and_stop();

  const ServeReport report = engine.report();
  EXPECT_EQ(report.admitted, 50u);
  EXPECT_EQ(report.completed, 50u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.queue_depth, 0u);
  // Every request ran at least one top-level transaction on the STM.
  EXPECT_GE(stm.stats().top_commits, 50u);
  EXPECT_TRUE(workload.verify());
}

TEST(ServeEngine, LatencyReportIsPopulatedAndOrdered) {
  stm::Stm stm{small_stm()};
  util::WallClock clock;
  auto workload = make_servable_workload("array", stm);
  ServeEngine engine{stm, workload.handler, clock, {}};
  submit_admitted(engine, 100);
  engine.drain_and_stop();

  const auto latency = engine.report().latency;
  EXPECT_EQ(latency.count, 100u);
  EXPECT_GT(latency.mean, 0.0);
  EXPECT_LE(latency.p50, latency.p95);
  EXPECT_LE(latency.p95, latency.p99);
}

TEST(ServeEngine, StageBreakdownDecomposesLatencyExactly) {
  // Per-request stage stamps: latency = queue wait (enqueue→dequeue) +
  // service (dequeue→commit), so the exact means must add up and every
  // completed request contributes one sample to each stage histogram.
  stm::Stm stm{small_stm()};
  util::WallClock clock;
  const RequestHandler busy = [](util::Rng&) {
    std::this_thread::sleep_for(1ms);
  };
  ServeConfig cfg;
  cfg.workers = 2;
  ServeEngine engine{stm, busy, clock, cfg};
  submit_admitted(engine, 60);
  engine.drain_and_stop();

  const ServeReport report = engine.report();
  ASSERT_EQ(report.completed, 60u);
  EXPECT_EQ(report.queue_wait.count, 60u);
  EXPECT_EQ(report.service.count, 60u);
  EXPECT_GE(report.service.mean, 0.001);  // the handler sleeps 1 ms
  // Exact up to floating-point cancellation on absolute clock timestamps.
  EXPECT_NEAR(report.latency.mean, report.queue_wait.mean + report.service.mean,
              1e-6);
  EXPECT_LE(report.queue_wait.p50, report.queue_wait.p99);
  EXPECT_LE(report.service.p50, report.service.p99);
}

TEST(ServeEngine, StageBreakdownSkipsFailedRequests) {
  // Failed requests contribute no latency sample — and no stage samples
  // either, keeping the three histograms in lockstep.
  stm::Stm stm{small_stm()};
  util::WallClock clock;
  std::atomic<int> calls{0};
  const RequestHandler flaky = [&calls](util::Rng&) {
    if (calls.fetch_add(1) % 2 == 0) throw std::runtime_error{"boom"};
  };
  ServeEngine engine{stm, flaky, clock, {}};
  submit_admitted(engine, 20);
  engine.drain_and_stop();
  const ServeReport report = engine.report();
  EXPECT_EQ(report.queue_wait.count, report.completed);
  EXPECT_EQ(report.service.count, report.completed);
  EXPECT_EQ(report.latency.count, report.completed);
}

TEST(ServeEngine, ShedsUnderOverloadWithRetryAfterHint) {
  stm::Stm stm{small_stm()};
  util::WallClock clock;
  // A deliberately slow handler so one worker cannot keep up.
  const RequestHandler slow = [](util::Rng&) {
    std::this_thread::sleep_for(5ms);
  };
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 8;
  cfg.shed_watermark = 4;
  ServeEngine engine{stm, slow, clock, cfg};

  bool saw_shed = false;
  double retry_after = 0.0;
  for (int i = 0; i < 200; ++i) {
    const auto r = engine.submit();
    if (!r.admitted) {
      saw_shed = true;
      retry_after = r.retry_after;
      break;
    }
  }
  EXPECT_TRUE(saw_shed);
  EXPECT_GT(retry_after, 0.0);
  EXPECT_LE(retry_after, 5.0);
  engine.drain_and_stop();
  const auto report = engine.report();
  EXPECT_GT(report.shed, 0u);
  EXPECT_GT(report.shed_fraction, 0.0);
}

TEST(ServeEngine, DrainOnShutdownCompletesInFlightRequests) {
  stm::Stm stm{small_stm()};
  util::WallClock clock;
  std::atomic<int> executed{0};
  const RequestHandler slow = [&executed](util::Rng&) {
    std::this_thread::sleep_for(2ms);
    executed.fetch_add(1);
  };
  ServeConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 64;
  cfg.shed_watermark = 64;
  ServeEngine engine{stm, slow, clock, cfg};

  std::size_t admitted = 0;
  for (int i = 0; i < 32; ++i) admitted += engine.submit().admitted;
  engine.drain_and_stop();  // must wait for the whole backlog
  EXPECT_EQ(executed.load(), static_cast<int>(admitted));
  EXPECT_EQ(engine.report().completed, admitted);
  // Stopped engines shed everything and drain_and_stop stays idempotent.
  EXPECT_FALSE(engine.submit().admitted);
  engine.drain_and_stop();
}

TEST(ServeEngine, FailingHandlerCountsFailureAndKeepsServing) {
  stm::Stm stm{small_stm()};
  util::WallClock clock;
  std::atomic<int> calls{0};
  const RequestHandler flaky = [&calls](util::Rng&) {
    if (calls.fetch_add(1) % 2 == 0) throw std::runtime_error{"boom"};
  };
  ServeEngine engine{stm, flaky, clock, {}};
  submit_admitted(engine, 20);
  engine.drain_and_stop();
  const auto report = engine.report();
  EXPECT_EQ(report.completed + report.failed, 20u);
  EXPECT_GT(report.failed, 0u);
  EXPECT_GT(report.completed, 0u);
}

TEST(ServiceKpiSource, DrainReturnsWindowSamplesOnce) {
  stm::Stm stm{small_stm()};
  util::WallClock clock;
  auto workload = make_servable_workload("array", stm);
  ServeEngine engine{stm, workload.handler, clock, {}};
  (void)engine.kpi_source().drain_latencies();  // discard pre-window noise
  submit_admitted(engine, 25);
  engine.drain_and_stop();

  const auto samples = engine.kpi_source().drain_latencies();
  EXPECT_EQ(samples.size(), 25u);
  for (double s : samples) EXPECT_GE(s, 0.0);
  EXPECT_TRUE(engine.kpi_source().drain_latencies().empty());  // drained
  // The cumulative histogram is unaffected by draining windows.
  EXPECT_EQ(engine.kpi_source().latency_summary().count, 25u);
}

TEST(Loadgen, OpenLoopOffersAtConfiguredRate) {
  stm::Stm stm{small_stm()};
  util::WallClock clock;
  auto workload = make_servable_workload("array", stm);
  ServeEngine engine{stm, workload.handler, clock, {}};
  OpenLoopParams params;
  params.rate = 400.0;
  params.duration = 0.5;
  const OpenLoopResult result = run_open_loop(engine, params);
  engine.drain_and_stop();
  EXPECT_EQ(result.offered, result.admitted + result.shed);
  // Poisson(rate * duration) = 200 expected arrivals; allow wide slack for
  // slow CI machines (the generator degrades to back-to-back, never over).
  EXPECT_GT(result.offered, 50u);
  EXPECT_LT(result.offered, 400u);
  EXPECT_NEAR(result.duration, 0.5, 0.2);
}

TEST(Loadgen, OpenLoopOverloadGrowsQueueAndSheds) {
  stm::Stm stm{small_stm()};
  util::WallClock clock;
  const RequestHandler slow = [](util::Rng&) {
    std::this_thread::sleep_for(2ms);
  };
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 16;
  cfg.shed_watermark = 8;
  ServeEngine engine{stm, slow, clock, cfg};
  OpenLoopParams params;
  params.rate = 2000.0;  // far beyond ~500/s service capacity
  params.duration = 0.4;
  const OpenLoopResult result = run_open_loop(engine, params);
  engine.drain_and_stop();
  EXPECT_GT(result.shed, 0u);
  EXPECT_GT(result.shed_fraction(), 0.3);
  EXPECT_GE(result.max_queue_depth, 8u);  // backlog reached the watermark
}

TEST(ServeEngine, RetryAfterHintTrustThresholdAndClamps) {
  // Virtual time pins the retry-after policy exactly: the completion-rate
  // estimate is trusted only from the 8th completion on, and the hint is
  // clamped to [1 ms, 5 s] on both sides.
  stm::Stm stm{small_stm()};
  util::VirtualClock clock;
  ServeConfig cfg;
  cfg.workers = 1;
  ServeEngine engine{stm, [](util::Rng&) {}, clock, cfg};

  const auto complete_one = [&] {
    util::WaitGroup done;
    done.add(1);
    ASSERT_TRUE(
        engine.submit({}, [&done](const RequestResult&) { done.done(); })
            .admitted);
    done.wait();
  };

  for (int i = 0; i < 7; ++i) complete_one();
  clock.set(1e-6);
  // 7 completions: the rate (here a huge 7e6/s) must NOT be trusted yet —
  // the hint is the 10 ms/request fallback (empty queue → excess = 1).
  EXPECT_DOUBLE_EQ(engine.report().retry_after_hint, 0.010);

  complete_one();  // 8th completion crosses the trust threshold
  // rate = 8 / 1e-6 s → raw hint ~1.25e-7 s → clamped up to the 1 ms floor.
  EXPECT_DOUBLE_EQ(engine.report().retry_after_hint, 0.001);

  clock.set(2.0);  // rate = 8 / 2 s = 4/s → hint = 1 / 4 = 0.25 s, unclamped
  EXPECT_NEAR(engine.report().retry_after_hint, 0.25, 1e-9);

  clock.set(1e9);  // rate ~8e-9/s → raw hint ~1.25e8 s → clamped to the 5 s cap
  EXPECT_DOUBLE_EQ(engine.report().retry_after_hint, 5.0);

  engine.drain_and_stop();
}

TEST(ServeEngine, ShedTimeRetryAfterMatchesReportedHint) {
  // The hint a shed submit() returns is the same one report() surfaces.
  stm::Stm stm{small_stm()};
  util::WallClock clock;
  const RequestHandler slow = [](util::Rng&) {
    std::this_thread::sleep_for(5ms);
  };
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 8;
  cfg.shed_watermark = 2;
  ServeEngine engine{stm, slow, clock, cfg};
  double shed_hint = 0.0;
  for (int i = 0; i < 100 && shed_hint == 0.0; ++i) {
    const auto r = engine.submit();
    if (!r.admitted) shed_hint = r.retry_after;
  }
  ASSERT_GT(shed_hint, 0.0);
  EXPECT_GE(shed_hint, 0.001);
  EXPECT_LE(shed_hint, 5.0);
  EXPECT_GT(engine.report().retry_after_hint, 0.0);
  engine.drain_and_stop();
}

TEST(ServeEngine, PerTenantLatencyIsolatedBySlot) {
  stm::Stm stm{small_stm()};
  util::WallClock clock;
  ServeConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 64;
  cfg.shed_watermark = 64;
  ServeEngine engine{stm, [](util::Rng&) {}, clock, cfg};

  const auto submit_for_tenant = [&](std::uint16_t tenant, int count) {
    for (int i = 0; i < count; ++i) {
      while (!engine.submit({}, {}, tenant).admitted) {
        std::this_thread::sleep_for(1ms);
      }
    }
  };
  submit_for_tenant(1, 10);
  submit_for_tenant(2, 5);
  submit_for_tenant(9, 3);  // 9 % kTenantSlots == 1: shares tenant 1's slot
  engine.drain_and_stop();

  static_assert(ServiceKpiSource::tenant_slot(9) == 1);
  const auto report = engine.report();
  EXPECT_EQ(report.latency.count, 18u);
  ASSERT_EQ(report.tenants.size(), 2u);  // slots 1 and 2 saw traffic
  EXPECT_EQ(report.tenants[0].tenant, 1u);
  EXPECT_EQ(report.tenants[0].latency.count, 13u);  // tenant 1 + tenant 9
  EXPECT_EQ(report.tenants[1].tenant, 2u);
  EXPECT_EQ(report.tenants[1].latency.count, 5u);
  for (const auto& t : report.tenants) {
    EXPECT_LE(t.latency.p50, t.latency.p99);
  }
}

TEST(ServeEngine, CompletionCallbackCarriesOutcomeAndTenant) {
  stm::Stm stm{small_stm()};
  util::WallClock clock;
  ServeEngine engine{stm, [](util::Rng&) {}, clock, {}};

  util::WaitGroup done;
  done.add(2);
  RequestResult ok_result;
  RequestResult failed_result;
  ASSERT_TRUE(engine
                  .submit({}, [&](const RequestResult& r) {
                            ok_result = r;
                            done.done();
                          },
                          /*tenant_id=*/5)
                  .admitted);
  ASSERT_TRUE(engine
                  .submit([](util::Rng&) { throw std::runtime_error{"boom"}; },
                          [&](const RequestResult& r) {
                            failed_result = r;
                            done.done();
                          },
                          /*tenant_id=*/6)
                  .admitted);
  done.wait();
  engine.drain_and_stop();
  EXPECT_EQ(ok_result.outcome, RequestOutcome::kCompleted);
  EXPECT_EQ(ok_result.tenant_id, 5u);
  EXPECT_GE(ok_result.latency, 0.0);
  EXPECT_EQ(failed_result.outcome, RequestOutcome::kFailed);
  EXPECT_EQ(failed_result.tenant_id, 6u);
  // A failed request contributes no latency sample, globally or per-tenant.
  const auto report = engine.report();
  EXPECT_EQ(report.latency.count, 1u);
  ASSERT_EQ(report.tenants.size(), 1u);
  EXPECT_EQ(report.tenants[0].tenant, 5u);
}

TEST(Loadgen, ClosedLoopClientsCompleteTheirRequests) {
  stm::Stm stm{small_stm()};
  util::WallClock clock;
  auto workload = make_servable_workload("array", stm);
  ServeEngine engine{stm, workload.handler, clock, {}};
  ClosedLoopParams params;
  params.clients = 4;
  params.think_time = 0.0005;
  params.duration = 0.4;
  const ClosedLoopResult result = run_closed_loop(engine, params);
  engine.drain_and_stop();
  EXPECT_GT(result.issued, 0u);
  EXPECT_EQ(result.issued, result.completed + result.shed);
  EXPECT_GT(result.completed, 0u);
  EXPECT_GE(engine.report().completed, result.completed);
}

}  // namespace
}  // namespace autopn::serve
