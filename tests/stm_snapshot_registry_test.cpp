// SnapshotRegistry unit tests: registration/deregistration and the pruning
// minimum under concurrent churn, the overflow fallback when more
// transactions are active than there are slots, and a regression harness for
// DESIGN.md §8 bug 2 (snapshot registration vs version pruning) against the
// lock-free registry through the full Stm.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "stm/snapshot_registry.hpp"
#include "stm/stm.hpp"

namespace autopn::stm {
namespace {

TEST(SnapshotRegistry, EmptyRegistryMinIsClock) {
  std::atomic<std::uint64_t> clock{0};
  SnapshotRegistry registry{clock, 4};
  EXPECT_EQ(registry.min_active(), 0u);
  clock.store(17);
  EXPECT_EQ(registry.min_active(), 17u);
  EXPECT_EQ(registry.active_count(), 0u);
}

TEST(SnapshotRegistry, RegisteredSnapshotBoundsMin) {
  std::atomic<std::uint64_t> clock{5};
  SnapshotRegistry registry{clock, 4};
  auto handle = registry.acquire();
  EXPECT_EQ(handle.snapshot(), 5u);
  EXPECT_TRUE(handle.live());
  EXPECT_FALSE(handle.overflowed());
  EXPECT_EQ(registry.active_count(), 1u);

  // Committers advance the clock; the held snapshot pins the minimum.
  clock.store(9);
  EXPECT_EQ(registry.min_active(), 5u);
}

TEST(SnapshotRegistry, ReleaseRestoresMinToClock) {
  std::atomic<std::uint64_t> clock{3};
  SnapshotRegistry registry{clock, 4};
  {
    auto handle = registry.acquire();
    clock.store(8);
    EXPECT_EQ(registry.min_active(), 3u);
  }
  EXPECT_EQ(registry.min_active(), 8u);
  EXPECT_EQ(registry.active_count(), 0u);

  auto handle = registry.acquire();
  handle.release();  // explicit early release; idempotent
  handle.release();
  EXPECT_FALSE(handle.live());
  EXPECT_EQ(registry.active_count(), 0u);
}

TEST(SnapshotRegistry, MinIsOldestOfSeveral) {
  std::atomic<std::uint64_t> clock{1};
  SnapshotRegistry registry{clock, 8};
  auto a = registry.acquire();  // snapshot 1
  clock.store(2);
  auto b = registry.acquire();  // snapshot 2
  clock.store(6);
  auto c = registry.acquire();  // snapshot 6
  EXPECT_EQ(registry.min_active(), 1u);
  a.release();
  EXPECT_EQ(registry.min_active(), 2u);
  b.release();
  EXPECT_EQ(registry.min_active(), 6u);
  c.release();
  EXPECT_EQ(registry.min_active(), 6u);
}

TEST(SnapshotRegistry, HandleMoveTransfersOwnership) {
  std::atomic<std::uint64_t> clock{4};
  SnapshotRegistry registry{clock, 2};
  auto a = registry.acquire();
  SnapshotRegistry::Handle b = std::move(a);
  EXPECT_FALSE(a.live());  // NOLINT(bugprone-use-after-move): probing the moved-from state
  EXPECT_TRUE(b.live());
  EXPECT_EQ(b.snapshot(), 4u);
  clock.store(10);
  EXPECT_EQ(registry.min_active(), 4u);
  b = SnapshotRegistry::Handle{};  // move-assign releases the old registration
  EXPECT_EQ(registry.min_active(), 10u);
}

TEST(SnapshotRegistry, OverflowFallbackKeepsMinCorrect) {
  std::atomic<std::uint64_t> clock{2};
  SnapshotRegistry registry{clock, 2};  // tiny on purpose
  std::vector<SnapshotRegistry::Handle> handles;
  for (int i = 0; i < 10; ++i) handles.push_back(registry.acquire());

  EXPECT_EQ(registry.active_count(), 10u);
  EXPECT_EQ(registry.overflow_count(), 8u);  // 2 slots + 8 overflow
  std::size_t overflowed = 0;
  for (const auto& h : handles) {
    EXPECT_EQ(h.snapshot(), 2u);
    if (h.overflowed()) ++overflowed;
  }
  EXPECT_EQ(overflowed, 8u);

  clock.store(50);
  EXPECT_EQ(registry.min_active(), 2u);

  // Releasing in arbitrary order drains both the slots and the overflow set.
  handles.erase(handles.begin() + 2, handles.begin() + 7);
  EXPECT_EQ(registry.min_active(), 2u);
  handles.clear();
  EXPECT_EQ(registry.active_count(), 0u);
  EXPECT_EQ(registry.overflow_count(), 0u);
  EXPECT_EQ(registry.min_active(), 50u);
}

TEST(SnapshotRegistry, MinNeverExceedsLiveSnapshotUnderChurn) {
  std::atomic<std::uint64_t> clock{0};
  SnapshotRegistry registry{clock, 4};  // small: churners hit overflow too

  auto pinned = registry.acquire();  // snapshot 0 held for the whole test
  std::atomic<bool> stop{false};
  std::atomic<bool> violated{false};

  std::vector<std::jthread> churners;
  for (int t = 0; t < 4; ++t) {
    churners.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto h = registry.acquire();
        clock.fetch_add(1, std::memory_order_seq_cst);  // play the committer
        if (registry.min_active() > pinned.snapshot()) {
          violated.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true);
  churners.clear();

  EXPECT_FALSE(violated.load());
  const std::uint64_t final_clock = clock.load();
  pinned.release();
  EXPECT_EQ(registry.min_active(), final_clock);
  EXPECT_EQ(registry.active_count(), 0u);
}

// Regression for DESIGN.md §8 bug 2 against the lock-free registry: a
// top-level transaction's snapshot must be visible to every committer whose
// pruning minimum could otherwise advance past it. If registration raced
// with pruning, readers would observe "transactional read of an
// uninitialized VBox" (std::logic_error) — which run_top propagates and the
// jthread turns into std::terminate, failing the test loudly.
class SnapshotPruningRegression
    : public ::testing::TestWithParam<CommitStrategy> {};

TEST_P(SnapshotPruningRegression, ActiveSnapshotsNeverLoseBodies) {
  StmConfig cfg;
  cfg.initial_top = 8;
  cfg.pool_threads = 1;
  cfg.commit_strategy = GetParam();
  cfg.snapshot_slots = 2;  // force slot contention + overflow registrations
  Stm stm{cfg};

  VBox<long> hot{0L};
  VBox<long> cold{42L};

  std::atomic<bool> stop{false};
  std::vector<std::jthread> threads;
  // Writers churn the hot box so its version chain grows and gets pruned on
  // every install; readers keep taking fresh snapshots of both boxes.
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        stm.run_top([&](Tx& tx) { hot.write(tx, hot.read(tx) + 1); });
      }
    });
  }
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const long value = stm.read_only<long>(
            [&](Tx& tx) { return hot.read(tx) + cold.read(tx); });
        ASSERT_GE(value, 42L);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  threads.clear();

  // Pruning stayed live: with no active snapshots the hot chain collapses to
  // the bodies reachable from the final clock value.
  stm.run_top([&](Tx& tx) { hot.write(tx, hot.read(tx) + 1); });
  EXPECT_LE(hot.chain_length(), 2u);
  EXPECT_GT(stm.stats().top_commits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Strategies, SnapshotPruningRegression,
                         ::testing::Values(CommitStrategy::kGlobalLock,
                                           CommitStrategy::kLockFree),
                         [](const ::testing::TestParamInfo<CommitStrategy>& info) {
                           return info.param == CommitStrategy::kGlobalLock
                                      ? "GlobalLock"
                                      : "LockFree";
                         });

}  // namespace
}  // namespace autopn::stm
