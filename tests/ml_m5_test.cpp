// Tests for the M5 model tree and the bagging ensemble.
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "ml/bagging.hpp"
#include "ml/m5tree.hpp"
#include "util/rng.hpp"

namespace autopn::ml {
namespace {

/// Piece-wise linear 1-D target: two regimes with different slopes — the
/// canonical function a model tree represents exactly and a single linear
/// model cannot.
double two_regime(double x) { return x < 5.0 ? 2.0 * x : 20.0 - 1.0 * (x - 5.0); }

Dataset two_regime_data(std::size_t n, double noise, std::uint64_t seed) {
  util::Rng rng{seed};
  Dataset data{1};
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    data.add(std::array{x}, two_regime(x) + noise * rng.gaussian());
  }
  return data;
}

TEST(M5Tree, EmptyDataConstantZero) {
  Dataset data{2};
  const M5Tree tree = M5Tree::fit(data);
  EXPECT_DOUBLE_EQ(tree.predict(std::array{1.0, 2.0}), 0.0);
  EXPECT_EQ(tree.leaf_count(), 1u);
}

TEST(M5Tree, SmallDataSingleLeafLinear) {
  Dataset data{1};
  for (double x : {1.0, 2.0, 3.0}) data.add(std::array{x}, 10.0 * x);
  M5Params params;
  params.min_leaf = 4;
  const M5Tree tree = M5Tree::fit(data, params);
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_NEAR(tree.predict(std::array{2.5}), 25.0, 1e-6);
}

TEST(M5Tree, SplitsTwoRegimes) {
  const Dataset data = two_regime_data(400, 0.0, 31);
  M5Params params;
  params.smooth = false;
  const M5Tree tree = M5Tree::fit(data, params);
  EXPECT_GE(tree.leaf_count(), 2u);
  // Predictions match the generating function away from the breakpoint.
  for (double x : {1.0, 3.0, 7.0, 9.0}) {
    EXPECT_NEAR(tree.predict(std::array{x}), two_regime(x), 0.5) << "x=" << x;
  }
}

TEST(M5Tree, BeatsSingleLinearModelOnPiecewiseData) {
  const Dataset data = two_regime_data(400, 0.1, 32);
  const M5Tree tree = M5Tree::fit(data);
  const LinearModel line = LinearModel::fit(data);
  EXPECT_LT(tree.rmse(data), 0.5 * line.rmse(data));
}

TEST(M5Tree, PruningShrinksOrKeepsTree) {
  const Dataset data = two_regime_data(200, 2.0, 33);  // noisy
  M5Params no_prune;
  no_prune.prune = false;
  M5Params with_prune;
  with_prune.prune = true;
  const M5Tree grown = M5Tree::fit(data, no_prune);
  const M5Tree pruned = M5Tree::fit(data, with_prune);
  EXPECT_LE(pruned.leaf_count(), grown.leaf_count());
}

TEST(M5Tree, HighNoisePrunesToFewLeaves) {
  // Pure noise: the corrected error should collapse the tree to (almost)
  // a single linear model.
  util::Rng rng{34};
  Dataset data{1};
  for (int i = 0; i < 200; ++i) {
    data.add(std::array{rng.uniform(0.0, 10.0)}, rng.gaussian());
  }
  const M5Tree tree = M5Tree::fit(data);
  EXPECT_LE(tree.leaf_count(), 4u);
}

TEST(M5Tree, SmoothingIsContinuousAcrossSplit) {
  // With smoothing, the prediction jump across the split threshold shrinks
  // relative to the unsmoothed tree.
  const Dataset data = two_regime_data(400, 0.5, 35);
  M5Params smooth;
  smooth.smooth = true;
  M5Params crisp;
  crisp.smooth = false;
  const M5Tree ts = M5Tree::fit(data, smooth);
  const M5Tree tc = M5Tree::fit(data, crisp);
  const double jump_s =
      std::abs(ts.predict(std::array{5.001}) - ts.predict(std::array{4.999}));
  const double jump_c =
      std::abs(tc.predict(std::array{5.001}) - tc.predict(std::array{4.999}));
  EXPECT_LE(jump_s, jump_c + 1e-9);
}

TEST(M5Tree, TwoDimensionalSplit) {
  // Target depends on x1 only via a step; tree must split on feature 1.
  util::Rng rng{36};
  Dataset data{2};
  for (int i = 0; i < 300; ++i) {
    const std::array<double, 2> x{rng.uniform(0.0, 1.0), rng.uniform(0.0, 10.0)};
    data.add(x, x[1] < 5.0 ? 1.0 : 100.0);
  }
  const M5Tree tree = M5Tree::fit(data);
  EXPECT_NEAR(tree.predict(std::array{0.5, 2.0}), 1.0, 10.0);
  EXPECT_NEAR(tree.predict(std::array{0.5, 8.0}), 100.0, 10.0);
}

TEST(M5Tree, DepthAndNodeCountConsistent) {
  const Dataset data = two_regime_data(200, 0.0, 37);
  const M5Tree tree = M5Tree::fit(data);
  EXPECT_GE(tree.depth(), 1u);
  EXPECT_GE(tree.node_count(), tree.leaf_count());
}

TEST(M5Tree, ConstantTargetsOneLeaf) {
  Dataset data{1};
  for (int i = 0; i < 50; ++i) data.add(std::array{double(i)}, 7.0);
  const M5Tree tree = M5Tree::fit(data);
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_NEAR(tree.predict(std::array{25.0}), 7.0, 1e-6);
}

TEST(M5Tree, ToStringShowsStructure) {
  const Dataset data = two_regime_data(400, 0.0, 51);
  const M5Tree tree = M5Tree::fit(data);
  const std::vector<std::string> names{"t"};
  const std::string rendered = tree.to_string(names);
  EXPECT_NE(rendered.find("t <= "), std::string::npos);
  EXPECT_NE(rendered.find("leaf[n="), std::string::npos);
  // Unnamed features fall back to x<i>.
  const std::string anonymous = tree.to_string();
  EXPECT_NE(anonymous.find("x0 <= "), std::string::npos);
}

TEST(M5Tree, ToDotIsWellFormed) {
  const Dataset data = two_regime_data(200, 0.0, 52);
  const M5Tree tree = M5Tree::fit(data);
  const std::string dot = tree.to_dot();
  EXPECT_EQ(dot.find("digraph m5 {"), 0u);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(M5Tree, SingleLeafRenderings) {
  Dataset data{1};
  for (int i = 0; i < 3; ++i) data.add(std::array{double(i)}, 5.0);
  const M5Tree tree = M5Tree::fit(data);
  EXPECT_NE(tree.to_string().find("leaf"), std::string::npos);
  EXPECT_EQ(tree.to_dot().find("digraph"), 0u);
}

TEST(Bagging, DeterministicGivenSeed) {
  const Dataset data = two_regime_data(100, 0.5, 38);
  const auto a = BaggingEnsemble::fit(data, 5, {}, 99);
  const auto b = BaggingEnsemble::fit(data, 5, {}, 99);
  for (double x : {1.0, 5.0, 9.0}) {
    EXPECT_DOUBLE_EQ(a.predict(std::array{x}).mean, b.predict(std::array{x}).mean);
  }
}

TEST(Bagging, MeanTracksTarget) {
  const Dataset data = two_regime_data(400, 0.2, 39);
  const auto ensemble = BaggingEnsemble::fit(data, 10, {}, 7);
  for (double x : {1.0, 3.0, 7.0, 9.0}) {
    EXPECT_NEAR(ensemble.predict(std::array{x}).mean, two_regime(x), 1.0);
  }
}

TEST(Bagging, VarianceConcentratesAtAmbiguousRegion) {
  // Bootstrap jitter moves each member's split threshold a little, so member
  // disagreement (variance) peaks near the regime breakpoint and is small in
  // a smooth regime interior — exactly the uncertainty signal EI exploits.
  const Dataset data = two_regime_data(300, 0.3, 40);
  const auto ensemble = BaggingEnsemble::fit(data, 10, {}, 8);
  const double var_breakpoint = ensemble.predict(std::array{5.0}).variance;
  const double var_interior = ensemble.predict(std::array{2.0}).variance;
  EXPECT_GT(var_breakpoint, var_interior);
}

TEST(Bagging, SizeAndMembers) {
  const Dataset data = two_regime_data(50, 0.1, 41);
  const auto ensemble = BaggingEnsemble::fit(data, 4, {}, 9);
  EXPECT_EQ(ensemble.size(), 4u);
  (void)ensemble.member(3);
  EXPECT_THROW((void)ensemble.member(4), std::out_of_range);
}

TEST(Bagging, PredictionStddevConsistent) {
  const Dataset data = two_regime_data(100, 1.0, 42);
  const auto ensemble = BaggingEnsemble::fit(data, 10, {}, 10);
  const auto p = ensemble.predict(std::array{5.0});
  EXPECT_NEAR(p.stddev(), std::sqrt(p.variance), 1e-12);
}

// Property sweep: trained on the paper's actual feature lattice (t, c), the
// ensemble must interpolate a smooth synthetic throughput surface within a
// reasonable tolerance from few samples — the premise of SMBO's usefulness.
class SurfaceFit : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SurfaceFit, InterpolatesThroughputSurface) {
  const std::size_t samples_n = GetParam();
  util::Rng rng{43 + samples_n};
  auto surface = [](double t, double c) {
    return t * 10.0 / (1.0 + 0.05 * t * c) + 5.0 * c;
  };
  Dataset data{2};
  for (std::size_t i = 0; i < samples_n; ++i) {
    const double t = 1.0 + static_cast<double>(rng.uniform_index(48));
    const double c = 1.0 + static_cast<double>(rng.uniform_index(8));
    data.add(std::array{t, c}, surface(t, c));
  }
  const auto ensemble = BaggingEnsemble::fit(data, 10, {}, 44);
  // Mean relative error over a probe grid.
  double total_rel = 0.0;
  int probes = 0;
  for (double t : {4.0, 12.0, 24.0, 40.0}) {
    for (double c : {1.0, 2.0, 4.0}) {
      const double truth = surface(t, c);
      total_rel += std::abs(ensemble.predict(std::array{t, c}).mean - truth) / truth;
      ++probes;
    }
  }
  EXPECT_LT(total_rel / probes, 0.35);
}

INSTANTIATE_TEST_SUITE_P(SampleCounts, SurfaceFit, ::testing::Values(40u, 80u, 160u));

}  // namespace
}  // namespace autopn::ml
