// End-to-end serving tests: the AutoPN tuning controller retuning (t, c)
// live while the engine serves traffic, with real request latencies feeding
// KpiKind::kLatency through the ServiceKpiSource.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "opt/autopn_optimizer.hpp"
#include "opt/baselines.hpp"
#include "runtime/controller.hpp"
#include "serve/engine.hpp"
#include "serve/handlers.hpp"
#include "serve/loadgen.hpp"

namespace autopn::serve {
namespace {

using namespace std::chrono_literals;

stm::StmConfig small_stm() {
  stm::StmConfig cfg;
  cfg.max_cores = 4;
  cfg.pool_threads = 2;
  cfg.initial_top = 1;
  cfg.initial_children = 1;
  return cfg;
}

/// Open-loop traffic from a background thread until destruction.
class TrafficDriver {
 public:
  TrafficDriver(ServeEngine& engine, double rate) {
    thread_ = std::jthread{[this, &engine, rate] {
      util::Rng rng{99};
      while (!stop_.load(std::memory_order_relaxed)) {
        (void)engine.submit();
        std::this_thread::sleep_for(std::chrono::duration<double>(
            rng.exponential(rate)));
      }
    }};
  }
  ~TrafficDriver() { stop_.store(true); }

 private:
  std::atomic<bool> stop_{false};
  std::jthread thread_;
};

TEST(ServeE2E, AutoPnConvergesOnSmallLatticeUnderLiveTraffic) {
  stm::Stm stm{small_stm()};
  util::WallClock clock;
  auto workload = make_servable_workload("array", stm);
  ServeConfig scfg;
  scfg.workers = 3;
  ServeEngine engine{stm, workload.handler, clock, scfg};
  TrafficDriver traffic{engine, 2000.0};

  opt::ConfigSpace space{4};  // 8-configuration lattice
  opt::AutoPnParams ap;
  ap.bootstrap_points = 5;
  runtime::ControllerParams params;
  params.max_window_seconds = 0.5;
  runtime::TuningController controller{
      stm, std::make_unique<opt::AutoPnOptimizer>(space, ap, 1),
      std::make_unique<runtime::CvAdaptivePolicy>(0.30, 3), clock, params};
  controller.set_latency_source(&engine.kpi_source());

  const runtime::TuningReport report = controller.tune();
  EXPECT_TRUE(space.valid(report.chosen));
  EXPECT_GE(report.explorations, 3u);
  EXPECT_LE(report.explorations, space.size());
  // The tuned configuration was applied to the live gates.
  EXPECT_EQ(static_cast<int>(stm.top_limit()), report.chosen.t);
  EXPECT_EQ(static_cast<int>(stm.child_limit()), report.chosen.c);
  // Observations carry positive KPIs — live traffic flowed during tuning.
  std::size_t positive = 0;
  for (const auto& obs : report.observations) positive += obs.kpi > 0.0;
  EXPECT_GT(positive, 0u);

  engine.drain_and_stop();
  const ServeReport serve_report = engine.report();
  EXPECT_GT(serve_report.completed, 0u);
  EXPECT_GT(serve_report.latency.p99, 0.0);
  // Accounting invariant after drain: nothing offered is ever lost.
  EXPECT_EQ(serve_report.offered, serve_report.admitted + serve_report.shed);
  EXPECT_EQ(serve_report.admitted,
            serve_report.completed + serve_report.expired + serve_report.failed);
  EXPECT_EQ(serve_report.queue_depth, 0u);
  EXPECT_TRUE(workload.verify());
}

TEST(ServeE2E, LatencyKpiWindowsCarryRequestLatencies) {
  stm::Stm stm{small_stm()};
  util::WallClock clock;
  auto workload = make_servable_workload("array", stm);
  ServeEngine engine{stm, workload.handler, clock, {}};
  TrafficDriver traffic{engine, 2000.0};

  opt::ConfigSpace space{4};
  runtime::ControllerParams params;
  params.kpi = runtime::KpiKind::kLatency;
  params.max_window_seconds = 1.0;
  runtime::TuningController controller{
      stm, std::make_unique<opt::GridSearch>(space),
      std::make_unique<runtime::FixedTimePolicy>(0.05), clock, params};
  controller.set_latency_source(&engine.kpi_source());

  const runtime::Measurement m = controller.measure_once();
  EXPECT_GT(m.commits, 0u);
  EXPECT_GT(m.latency_samples, 0u);
  EXPECT_GT(m.mean_latency, 0.0);
  EXPECT_GE(m.p99_latency, m.mean_latency * 0.5);
  engine.drain_and_stop();
}

TEST(ServeE2E, RateShiftTriggersRetuneThroughCusum) {
  // Phase 1: light traffic. Phase 2: a much heavier arrival rate. The
  // throughput jump must fire the CUSUM detector and force a second tuning
  // round — the live re-tune path the CLI's `serve` command exercises.
  stm::Stm stm{small_stm()};
  util::WallClock clock;
  auto workload = make_servable_workload("array", stm);
  ServeConfig scfg;
  scfg.workers = 3;
  scfg.queue_capacity = 512;
  ServeEngine engine{stm, workload.handler, clock, scfg};

  std::atomic<bool> shifted{false};
  std::atomic<bool> stop{false};
  std::jthread traffic{[&] {
    util::Rng rng{123};
    while (!stop.load(std::memory_order_relaxed)) {
      (void)engine.submit();
      const double rate = shifted.load(std::memory_order_relaxed) ? 4000.0 : 150.0;
      std::this_thread::sleep_for(
          std::chrono::duration<double>(rng.exponential(rate)));
    }
  }};

  opt::ConfigSpace space{4};
  runtime::ControllerParams params;
  params.max_window_seconds = 0.5;
  runtime::TuningController controller{
      stm, std::make_unique<opt::GridSearch>(space),
      std::make_unique<runtime::FixedTimePolicy>(0.02), clock, params};
  controller.set_latency_source(&engine.kpi_source());

  std::jthread shifter{[&] {
    std::this_thread::sleep_for(500ms);
    shifted.store(true);
  }};
  const std::size_t rounds = controller.tune_and_watch(
      [&space] { return std::make_unique<opt::GridSearch>(space); },
      /*duration_seconds=*/2.5);
  stop.store(true);
  traffic = {};
  EXPECT_GE(rounds, 2u) << "arrival-rate shift did not trigger a re-tune";
  engine.drain_and_stop();
  const ServeReport serve_report = engine.report();
  EXPECT_GT(serve_report.completed, 0u);
  EXPECT_EQ(serve_report.offered, serve_report.admitted + serve_report.shed);
  EXPECT_EQ(serve_report.admitted,
            serve_report.completed + serve_report.expired + serve_report.failed);
}

}  // namespace
}  // namespace autopn::serve
