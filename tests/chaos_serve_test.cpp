// Chaos tests of the serving layer's self-healing: request deadlines checked
// at dequeue and propagated into transaction retry loops, injected handler
// failures, and the accounting invariant
// offered == admitted + shed, admitted == completed + expired + failed.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "serve/engine.hpp"
#include "stm/stm.hpp"
#include "stm/vbox.hpp"
#include "util/clock.hpp"
#include "util/failpoint.hpp"

namespace autopn::serve {
namespace {

void expect_accounting_invariant(const ServeReport& report) {
  EXPECT_EQ(report.offered, report.admitted + report.shed);
  EXPECT_EQ(report.admitted,
            report.completed + report.expired + report.failed);
  EXPECT_EQ(report.queue_depth, 0u);
}

class ChaosServeTest : public ::testing::Test {
 protected:
  void TearDown() override { util::FailpointRegistry::instance().disarm_all(); }

  stm::StmConfig stm_config() {
    stm::StmConfig config;
    config.pool_threads = 2;
    config.initial_top = 4;
    return config;
  }
};

TEST_F(ChaosServeTest, QueuedRequestsExpireAtDequeueWithoutExecuting) {
  if (!util::FailpointRegistry::compiled_in()) GTEST_SKIP();
  stm::Stm stm{stm_config()};
  util::WallClock clock;
  std::atomic<int> executions{0};
  ServeConfig config;
  config.workers = 1;
  config.queue_capacity = 64;
  config.request_timeout = 0.005;  // 5 ms
  // Stall the single worker 20 ms per dequeue: everything behind the first
  // request is far past its deadline by the time it is popped.
  util::FailpointRegistry::instance().arm_from_string(
      "serve.worker.begin=delay(d=20ms)");
  ServeEngine engine{
      stm, [&](util::Rng&) { executions.fetch_add(1); }, clock, config};
  constexpr int kRequests = 6;
  int admitted = 0;
  for (int i = 0; i < kRequests; ++i) {
    if (engine.submit().admitted) ++admitted;
  }
  engine.drain_and_stop();
  const ServeReport report = engine.report();
  expect_accounting_invariant(report);
  EXPECT_EQ(report.admitted, static_cast<std::uint64_t>(admitted));
  EXPECT_GT(report.expired, 0u);
  // Expired requests never ran: executions only counts completed ones.
  EXPECT_EQ(static_cast<std::uint64_t>(executions.load()), report.completed);
}

TEST_F(ChaosServeTest, DeadlinePassingMidRetryExpiresTheRequest) {
  if (!util::FailpointRegistry::compiled_in()) GTEST_SKIP();
  stm::StmConfig config = stm_config();
  config.retry_budget = 0;  // never escalate: the deadline must break the loop
  stm::Stm stm{config};
  util::WallClock clock;
  stm::VBox<int> box;
  stm.run_top([&](stm::Tx& tx) { box.write(tx, 0); });
  // Every commit attempt is injected-aborted, so the handler's transaction
  // can only end when the request deadline fires through ScopedDeadline.
  util::FailpointRegistry::instance().arm_from_string(
      "stm.commit.validate=error(p=1)");
  ServeConfig serve_config;
  serve_config.workers = 2;
  serve_config.request_timeout = 0.02;
  ServeEngine engine{stm,
                     [&](util::Rng&) {
                       stm.run_top([&](stm::Tx& tx) {
                         box.write(tx, box.read(tx) + 1);
                       });
                     },
                     clock, serve_config};
  constexpr int kRequests = 4;
  std::atomic<int> done{0};
  for (int i = 0; i < kRequests; ++i) {
    (void)engine.submit({}, [&](const RequestResult&) { done.fetch_add(1); });
  }
  // on_complete fires for expired requests too — closed-loop clients never
  // hang on a request the deadline killed.
  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds{20};
  while (done.load() < kRequests &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds{1});
  }
  EXPECT_EQ(done.load(), kRequests);
  engine.drain_and_stop();
  const ServeReport report = engine.report();
  expect_accounting_invariant(report);
  EXPECT_EQ(report.expired, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(report.completed, 0u);
  // The injected aborts never committed anything.
  util::FailpointRegistry::instance().disarm_all();
  EXPECT_EQ(stm.read_only<int>([&](stm::Tx& tx) { return box.read(tx); }), 0);
}

TEST_F(ChaosServeTest, InjectedHandlerFailuresAreCountedNotFatal) {
  if (!util::FailpointRegistry::compiled_in()) GTEST_SKIP();
  stm::Stm stm{stm_config()};
  util::WallClock clock;
  util::FailpointRegistry::instance().arm_from_string(
      "serve.worker.fail=error(p=0.5)");
  ServeConfig config;
  config.workers = 3;
  ServeEngine engine{stm, [](util::Rng&) {}, clock, config};
  constexpr int kRequests = 200;
  std::atomic<int> done{0};
  int admitted = 0;
  for (int i = 0; i < kRequests; ++i) {
    // Shed requests are rejected synchronously (admitted == false) and never
    // reach a worker, so on_complete fires only for admitted ones.
    if (engine.submit({}, [&](const RequestResult&) { done.fetch_add(1); })
            .admitted) {
      ++admitted;
    }
  }
  engine.drain_and_stop();
  EXPECT_EQ(done.load(), admitted);
  const ServeReport report = engine.report();
  expect_accounting_invariant(report);
  EXPECT_EQ(report.admitted, static_cast<std::uint64_t>(admitted));
  EXPECT_GT(report.failed, 0u);
  EXPECT_GT(report.completed, 0u);
}

TEST_F(ChaosServeTest, RetryAfterHintStaysBoundedWithoutCompletions) {
  // Hint hardening: with zero observed completions (cold start) the hint
  // must come from the nominal fallback, never divide-by-near-zero, and
  // always land in [1 ms, 5 s].
  stm::Stm stm{stm_config()};
  util::WallClock clock;
  std::atomic<bool> release{false};
  ServeConfig config;
  config.workers = 1;
  config.queue_capacity = 4;
  config.shed_watermark = 2;
  ServeEngine engine{stm,
                     [&](util::Rng&) {
                       while (!release.load()) {
                         std::this_thread::sleep_for(
                             std::chrono::milliseconds{1});
                       }
                     },
                     clock, config};
  // Fill past the watermark with the single worker wedged: later submits
  // are shed and must carry a sane hint despite completion_rate == 0.
  std::vector<SubmitResult> results;
  for (int i = 0; i < 10; ++i) results.push_back(engine.submit());
  bool saw_shed = false;
  for (const SubmitResult& r : results) {
    if (r.admitted) continue;
    saw_shed = true;
    EXPECT_GE(r.retry_after, 0.001);
    EXPECT_LE(r.retry_after, 5.0);
  }
  EXPECT_TRUE(saw_shed);
  release.store(true);
  engine.drain_and_stop();
  expect_accounting_invariant(engine.report());
}

TEST_F(ChaosServeTest, AccountingHoldsUnderCombinedChaos) {
  if (!util::FailpointRegistry::compiled_in()) GTEST_SKIP();
  stm::Stm stm{stm_config()};
  util::WallClock clock;
  util::FailpointRegistry::instance().arm_from_string(
      "serve.worker.fail=error(p=0.2);"
      "serve.queue.push=delay(d=100us,p=0.2);"
      "serve.worker.begin=delay(d=200us,p=0.3)");
  ServeConfig config;
  config.workers = 3;
  config.queue_capacity = 16;
  config.request_timeout = 0.003;
  ServeEngine engine{stm,
                     [](util::Rng& rng) {
                       std::this_thread::sleep_for(
                           std::chrono::microseconds{rng.uniform_int(50, 500)});
                     },
                     clock, config};
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 100;
  std::vector<std::jthread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        (void)engine.submit();
        std::this_thread::sleep_for(std::chrono::microseconds{200});
      }
    });
  }
  producers.clear();  // join
  engine.drain_and_stop();
  const ServeReport report = engine.report();
  EXPECT_EQ(report.offered,
            static_cast<std::uint64_t>(kProducers * kPerProducer));
  expect_accounting_invariant(report);
}

}  // namespace
}  // namespace autopn::serve
