// Tests for the analytical surface model, workload presets, commit streams
// and trace record/replay.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/event_sim.hpp"
#include "sim/surface.hpp"
#include "sim/trace.hpp"
#include "sim/workload.hpp"
#include "util/stats.hpp"

namespace autopn::sim {
namespace {

TEST(Workloads, TenPresets) {
  const auto all = paper_workloads();
  EXPECT_EQ(all.size(), 10u);
  for (const auto& w : all) {
    EXPECT_FALSE(w.name.empty());
    EXPECT_GT(w.base_work, 0.0);
    EXPECT_GT(w.parallel_fraction, 0.0);
    EXPECT_LT(w.parallel_fraction, 1.0);
  }
}

TEST(Workloads, LookupByName) {
  EXPECT_EQ(workload_by_name("tpcc-med").name, "tpcc-med");
  EXPECT_EQ(workload_by_name("array-90").name, "array-90");
  EXPECT_THROW(workload_by_name("nope"), std::invalid_argument);
}

TEST(SurfaceModel, SequentialThroughputIsInverseWork) {
  // At (1,1) throughput is 1/base_work up to the (tiny) single-core
  // saturation term 1 + saturation/n.
  const auto params = workload_by_name("tpcc-med");
  const SurfaceModel model{params, 48};
  const double expected = 1.0 / (params.base_work * (1.0 + params.saturation / 48.0));
  EXPECT_NEAR(model.mean_throughput(opt::Config{1, 1}), expected, 1e-6);
}

TEST(SurfaceModel, NoAbortsWithoutContention) {
  const SurfaceModel model{workload_by_name("array-0"), 48};
  EXPECT_DOUBLE_EQ(model.top_abort_probability(opt::Config{48, 1}), 0.0);
  EXPECT_DOUBLE_EQ(model.sibling_abort_probability(opt::Config{1, 48}), 0.0);
}

TEST(SurfaceModel, AbortsGrowWithTopParallelism) {
  const SurfaceModel model{workload_by_name("tpcc-med"), 48};
  const double p4 = model.top_abort_probability(opt::Config{4, 1});
  const double p16 = model.top_abort_probability(opt::Config{16, 1});
  const double p48 = model.top_abort_probability(opt::Config{48, 1});
  EXPECT_LT(p4, p16);
  EXPECT_LT(p16, p48);
}

TEST(SurfaceModel, NestingShortensLatencyForParallelizableWork) {
  const SurfaceModel model{workload_by_name("array-0"), 48};
  EXPECT_LT(model.mean_latency(opt::Config{1, 8}),
            model.mean_latency(opt::Config{1, 1}));
}

TEST(SurfaceModel, TpccMedPaperFacts) {
  // Fig 1a: optimum (20,2), about 9x over (1,1), 2-3x over most others.
  const opt::ConfigSpace space{48};
  const SurfaceModel model{workload_by_name("tpcc-med"), 48};
  const auto opt = model.optimum(space);
  EXPECT_EQ(opt.config, (opt::Config{20, 2}));
  const double ratio = opt.throughput / model.mean_throughput(opt::Config{1, 1});
  EXPECT_GT(ratio, 7.0);
  EXPECT_LT(ratio, 12.0);
}

TEST(SurfaceModel, BestWorkloadSpecificConfigsDiverge) {
  // Fig 1b: the best configuration of one workload is (near) the worst of
  // another. array-0 peaks at full top-level parallelism; array-90 peaks at
  // single top-level with many children, and (48,1) is terrible for it.
  const opt::ConfigSpace space{48};
  const SurfaceModel scan{workload_by_name("array-0"), 48};
  const SurfaceModel contended{workload_by_name("array-90"), 48};
  EXPECT_EQ(scan.optimum(space).config, (opt::Config{48, 1}));
  const auto contended_opt = contended.optimum(space);
  EXPECT_EQ(contended_opt.config.t, 2);
  EXPECT_GE(contended_opt.config.c, 8);
  EXPECT_GT(contended.distance_from_optimum(space, opt::Config{48, 1}), 0.5);
}

TEST(SurfaceModel, DistanceFromOptimumBounds) {
  const opt::ConfigSpace space{48};
  const SurfaceModel model{workload_by_name("vacation-med"), 48};
  for (const opt::Config& cfg : space.all()) {
    const double dfo = model.distance_from_optimum(space, cfg);
    EXPECT_GE(dfo, 0.0);
    EXPECT_LT(dfo, 1.0);
  }
  EXPECT_NEAR(model.distance_from_optimum(space, model.optimum(space).config), 0.0,
              1e-12);
}

TEST(SurfaceModel, SamplesCenterOnMeanWithShrinkingNoise) {
  const SurfaceModel model{workload_by_name("tpcc-med"), 48};
  const opt::Config cfg{20, 2};
  util::Rng rng{1};
  util::RunningStats narrow;
  util::RunningStats wide;
  for (int i = 0; i < 3000; ++i) {
    narrow.add(model.sample(cfg, 10.0, rng));
    wide.add(model.sample(cfg, 0.001, rng));
  }
  const double mean = model.mean_throughput(cfg);
  EXPECT_NEAR(narrow.mean(), mean, mean * 0.01);
  EXPECT_LT(narrow.cv(), wide.cv());
}

TEST(SurfaceModel, ContentionFloorPreventsStarvation) {
  const opt::ConfigSpace space{48};
  const SurfaceModel model{workload_by_name("array-90"), 48};
  // Even the most contended configuration stays within a moderate factor of
  // sequential throughput (winners keep committing).
  const double seq = model.mean_throughput(opt::Config{1, 1});
  for (const opt::Config& cfg : space.all()) {
    EXPECT_GT(model.mean_throughput(cfg), seq / 4.0) << cfg.to_string();
  }
}

// Property sweep over all 10 workloads: structural sanity of every surface.
class AllWorkloads : public ::testing::TestWithParam<int> {};

TEST_P(AllWorkloads, SurfaceStructurallySane) {
  const auto params = paper_workloads()[static_cast<std::size_t>(GetParam())];
  const opt::ConfigSpace space{48};
  const SurfaceModel model{params, 48};
  const auto opt = model.optimum(space);
  // Throughput positive and bounded everywhere; optimum dominates.
  for (const opt::Config& cfg : space.all()) {
    const double thr = model.mean_throughput(cfg);
    EXPECT_GT(thr, 0.0) << params.name << " " << cfg.to_string();
    EXPECT_LE(thr, opt.throughput + 1e-9) << params.name << " " << cfg.to_string();
    // Latency and throughput are consistent: thr * latency == t.
    EXPECT_NEAR(thr * model.mean_latency(cfg), cfg.t, 1e-6 * cfg.t);
    // Abort probabilities are probabilities (extreme contention rounds to
    // 1.0 in double precision, hence <=).
    EXPECT_GE(model.top_abort_probability(cfg), 0.0);
    EXPECT_LE(model.top_abort_probability(cfg), 1.0);
    EXPECT_GE(model.sibling_abort_probability(cfg), 0.0);
    EXPECT_LT(model.sibling_abort_probability(cfg), 1.0);
  }
  // Every workload scales: the optimum beats sequential.
  EXPECT_GT(opt.throughput, model.mean_throughput(opt::Config{1, 1}));
}

TEST_P(AllWorkloads, AbortsMonotoneInTopParallelismAtFixedC) {
  const auto params = paper_workloads()[static_cast<std::size_t>(GetParam())];
  const SurfaceModel model{params, 48};
  for (int c : {1, 2, 4}) {
    double prev = -1.0;
    for (int t = 1; t * c <= 48; t *= 2) {
      const double p = model.top_abort_probability(opt::Config{t, c});
      EXPECT_GE(p, prev) << params.name << " t=" << t << " c=" << c;
      prev = p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Presets, AllWorkloads, ::testing::Range(0, 10),
                         [](const ::testing::TestParamInfo<int>& info) {
                           std::string name =
                               paper_workloads()[static_cast<std::size_t>(
                                                     info.param)]
                                   .name;
                           for (char& ch : name) {
                             if (ch == '-' || ch == '.') ch = '_';
                           }
                           return name;
                         });

TEST(CommitStreamTest, TimestampsStrictlyIncrease) {
  const SurfaceModel model{workload_by_name("vacation-med"), 48};
  CommitStream stream{model, opt::Config{8, 2}, 42};
  double prev = stream.now();
  for (int i = 0; i < 1000; ++i) {
    const double t = stream.next_commit();
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(CommitStreamTest, LongRunRateMatchesModel) {
  const SurfaceModel model{workload_by_name("vacation-med"), 48};
  const opt::Config cfg{8, 2};
  CommitStream stream{model, cfg, 7};
  const int commits = 60000;
  double last = 0.0;
  for (int i = 0; i < commits; ++i) last = stream.next_commit();
  const double measured_rate = commits / last;
  const double expected = model.mean_throughput(cfg);
  EXPECT_NEAR(measured_rate, expected, expected * 0.08);
}

TEST(CommitStreamTest, WarmupSlowsEarlyCommits) {
  WorkloadParams params = workload_by_name("array-0");
  params.warmup_seconds = 1.0;
  const SurfaceModel model{params, 48};
  const opt::Config cfg{4, 1};
  // Average rate over the first 20 commits vs a late window.
  CommitStream stream{model, cfg, 11};
  for (int i = 0; i < 20; ++i) (void)stream.next_commit();
  const double early_rate = 20.0 / stream.now();
  double start_late = 0.0;
  for (int i = 0; i < 400; ++i) {
    const double t = stream.next_commit();
    if (i == 199) start_late = t;
  }
  const double late_rate = 200.0 / (stream.now() - start_late);
  EXPECT_LT(early_rate, late_rate);
}

TEST(CommitStreamTest, StartTimeOffsetsStream) {
  const SurfaceModel model{workload_by_name("vacation-low"), 48};
  CommitStream stream{model, opt::Config{2, 1}, 3, /*start_time=*/100.0};
  EXPECT_DOUBLE_EQ(stream.now(), 100.0);
  EXPECT_GT(stream.next_commit(), 100.0);
}

TEST(SurfaceTraceTest, RecordCoversSpaceAndFindsOptimum) {
  const opt::ConfigSpace space{16};
  const SurfaceModel model{workload_by_name("tpcc-med"), 16};
  const auto trace = SurfaceTrace::record(model, space, 10, 10.0, 5);
  EXPECT_EQ(trace.size(), space.size());
  const auto model_opt = model.optimum(space);
  const auto trace_opt = trace.optimum();
  // With 10 long runs the recorded optimum should be the model's optimum or
  // an immediate neighbour in KPI.
  EXPECT_NEAR(trace_opt.throughput, model_opt.throughput,
              model_opt.throughput * 0.05);
}

TEST(SurfaceTraceTest, SaveLoadRoundTrip) {
  const opt::ConfigSpace space{8};
  const SurfaceModel model{workload_by_name("array-50"), 8};
  const auto trace = SurfaceTrace::record(model, space, 5, 5.0, 6);
  std::stringstream buffer;
  trace.save(buffer);
  const auto loaded = SurfaceTrace::load(buffer);
  EXPECT_EQ(loaded.workload(), trace.workload());
  EXPECT_EQ(loaded.cores(), trace.cores());
  EXPECT_EQ(loaded.size(), trace.size());
  for (const opt::Config& cfg : space.all()) {
    EXPECT_DOUBLE_EQ(loaded.at(cfg).mean, trace.at(cfg).mean);
    EXPECT_DOUBLE_EQ(loaded.at(cfg).stddev, trace.at(cfg).stddev);
  }
}

TEST(SurfaceTraceTest, LoadRejectsGarbage) {
  std::stringstream buffer{"not a trace"};
  EXPECT_THROW(SurfaceTrace::load(buffer), std::runtime_error);
}

TEST(SurfaceTraceTest, MissingEntryThrows) {
  SurfaceTrace trace{"x", 8};
  EXPECT_THROW((void)trace.at(opt::Config{1, 1}), std::out_of_range);
  EXPECT_FALSE(trace.contains(opt::Config{1, 1}));
}

TEST(SurfaceTraceTest, SampleRespectsRecordedMoments) {
  SurfaceTrace trace{"x", 8};
  trace.set(opt::Config{2, 2}, SurfaceTrace::Entry{100.0, 10.0});
  util::Rng rng{8};
  util::RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(trace.sample(opt::Config{2, 2}, rng));
  EXPECT_NEAR(stats.mean(), 100.0, 0.5);
  EXPECT_NEAR(stats.stddev(), 10.0, 0.3);
}

}  // namespace
}  // namespace autopn::sim
