// Unit tests for the model checker itself (src/mc), running in the REGULAR
// build: the mc:: primitives are used explicitly here, so the scheduler,
// happens-before engine, and exploration strategies get tier-1 coverage
// without an AUTOPN_MC configure. The component harnesses that check the
// production code through the seam live in tests/mc_commit_helping.cpp etc.
// and build only under the `mc` preset.

#include <memory>

#include <gtest/gtest.h>

#include "mc/explore.hpp"
#include "mc/model_sync.hpp"

namespace autopn::mc {
namespace {

Options small_exhaustive() {
  Options opts;
  opts.mode = Mode::kExhaustive;
  opts.preemption_bound = 2;
  opts.max_schedules = 50000;
  opts.max_steps = 2000;
  return opts;
}

// ---- happens-before engine ------------------------------------------------

TEST(McChecker, ReleaseAcquireMessagePassingIsRaceFree) {
  const Result r = explore(small_exhaustive(), [] {
    auto flag = std::make_shared<ModelAtomic<bool>>(false);
    auto data = std::make_shared<ModelShared<int>>(0);
    Thread writer{[=] {
      data->write() = 42;
      flag->store(true, std::memory_order_release);
    }};
    Thread reader{[=] {
      if (flag->load(std::memory_order_acquire)) {
        MC_ASSERT(data->read() == 42, "published value must be visible");
      }
    }};
    writer.join();
    reader.join();
  });
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_FALSE(r.budget_exhausted);
  EXPECT_GT(r.schedules, 1u);
}

TEST(McChecker, RelaxedPublishIsReportedAsRace) {
  // The exact annotation-weakening shape the component harnesses rely on:
  // same code as above, but the store no longer carries a release edge, so
  // the reader's payload access races in every schedule where the flag is
  // observed true.
  const Result r = explore(small_exhaustive(), [] {
    auto flag = std::make_shared<ModelAtomic<bool>>(false);
    auto data = std::make_shared<ModelShared<int>>(0);
    Thread writer{[=] {
      data->write() = 42;
      flag->store(true, std::memory_order_relaxed);
    }};
    Thread reader{[=] {
      if (flag->load(std::memory_order_acquire)) (void)data->read();
    }};
    writer.join();
    reader.join();
  });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.failures.front().kind, FailureKind::kRace);
  EXPECT_FALSE(r.failures.front().schedule.empty());
  EXPECT_FALSE(r.failures.front().trace.empty());
}

TEST(McChecker, RelaxedRmwContinuesReleaseSequence) {
  // C++20 release sequences: a relaxed RMW by another thread does not break
  // the chain from the original release store, but a relaxed plain store
  // does. The fetch_add variant must stay race-free.
  const Result r = explore(small_exhaustive(), [] {
    auto flag = std::make_shared<ModelAtomic<int>>(0);
    auto data = std::make_shared<ModelShared<int>>(0);
    Thread writer{[=] {
      data->write() = 1;
      flag->store(1, std::memory_order_release);
    }};
    Thread bumper{[=] { flag->fetch_add(1, std::memory_order_relaxed); }};
    Thread reader{[=] {
      if (flag->load(std::memory_order_acquire) == 2) (void)data->read();
    }};
    writer.join();
    bumper.join();
    reader.join();
  });
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(McChecker, MutexProtectsSharedCell) {
  const Result r = explore(small_exhaustive(), [] {
    auto m = std::make_shared<ModelMutex>();
    auto counter = std::make_shared<ModelShared<int>>(0);
    auto bump = [=] {
      m->lock();
      ++counter->write();
      m->unlock();
    };
    Thread t1{bump};
    Thread t2{bump};
    t1.join();
    t2.join();
    MC_ASSERT(counter->read() == 2, "both increments must land");
  });
  EXPECT_TRUE(r.ok()) << r.summary();
}

// ---- failure detection ----------------------------------------------------

TEST(McChecker, FindsLostUpdateViaAssert) {
  // Non-atomic read-modify-write on an atomic: exhaustive search must find
  // the interleaving where one increment is lost.
  const Result r = explore(small_exhaustive(), [] {
    auto counter = std::make_shared<ModelAtomic<int>>(0);
    auto bump = [=] {
      const int v = counter->load(std::memory_order_relaxed);
      counter->store(v + 1, std::memory_order_relaxed);
    };
    Thread t1{bump};
    Thread t2{bump};
    t1.join();
    t2.join();
    MC_ASSERT(counter->load(std::memory_order_relaxed) == 2, "lost update");
  });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.failures.front().kind, FailureKind::kAssert);
}

TEST(McChecker, FindsAbbaDeadlock) {
  const Result r = explore(small_exhaustive(), [] {
    auto m1 = std::make_shared<ModelMutex>();
    auto m2 = std::make_shared<ModelMutex>();
    Thread t1{[=] {
      m1->lock();
      m2->lock();
      m2->unlock();
      m1->unlock();
    }};
    Thread t2{[=] {
      m2->lock();
      m1->lock();
      m1->unlock();
      m2->unlock();
    }};
    t1.join();
    t2.join();
  });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.failures.front().kind, FailureKind::kDeadlock);
}

TEST(McChecker, CondVarHandshakeIsCleanInAllSchedules) {
  const Result r = explore(small_exhaustive(), [] {
    auto m = std::make_shared<ModelMutex>();
    auto cv = std::make_shared<ModelCondVar>();
    auto ready = std::make_shared<ModelShared<bool>>(false);
    Thread consumer{[=] {
      std::unique_lock<ModelMutex> lk{*m};
      cv->wait(lk, [&] { return ready->read(); });
      MC_ASSERT(ready->read(), "woke without the predicate");
    }};
    Thread producer{[=] {
      {
        std::unique_lock<ModelMutex> lk{*m};
        ready->write() = true;
      }
      cv->notify_one();
    }};
    consumer.join();
    producer.join();
  });
  EXPECT_TRUE(r.ok()) << r.summary();
}

// ---- exploration strategies -----------------------------------------------

TEST(McChecker, ReplayReproducesAFailureDeterministically) {
  auto lost_update_body = [] {
    auto counter = std::make_shared<ModelAtomic<int>>(0);
    auto bump = [=] {
      const int v = counter->load(std::memory_order_relaxed);
      counter->store(v + 1, std::memory_order_relaxed);
    };
    Thread t1{bump};
    Thread t2{bump};
    t1.join();
    t2.join();
    MC_ASSERT(counter->load(std::memory_order_relaxed) == 2, "lost update");
  };
  const Result found = explore(small_exhaustive(), lost_update_body);
  ASSERT_FALSE(found.ok());

  Options replay;
  replay.mode = Mode::kReplay;
  replay.replay = parse_schedule(found.failures.front().schedule);
  const Result replayed = explore(replay, lost_update_body);
  EXPECT_EQ(replayed.schedules, 1u);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.failures.front().kind, FailureKind::kAssert);
  // Determinism: the replayed failure reproduces the original schedule.
  EXPECT_EQ(replayed.failures.front().schedule,
            found.failures.front().schedule);
}

TEST(McChecker, PctModeFindsTheLostUpdate) {
  Options opts;
  opts.mode = Mode::kPct;
  opts.max_schedules = 2000;
  opts.max_steps = 2000;
  opts.pct_change_points = 2;
  opts.seed = 7;
  const Result r = explore(opts, [] {
    auto counter = std::make_shared<ModelAtomic<int>>(0);
    auto bump = [=] {
      const int v = counter->load(std::memory_order_relaxed);
      counter->store(v + 1, std::memory_order_relaxed);
    };
    Thread t1{bump};
    Thread t2{bump};
    t1.join();
    t2.join();
    MC_ASSERT(counter->load(std::memory_order_relaxed) == 2, "lost update");
  });
  EXPECT_FALSE(r.ok());
}

TEST(McChecker, SleepSetsPruneIndependentInterleavings) {
  // Two threads on DIFFERENT atomics commute everywhere: sleep sets should
  // collapse the tree far below the dependent variant's size.
  auto count = [](bool same_object) {
    Options opts = small_exhaustive();
    const Result r = explore(opts, [same_object] {
      auto a = std::make_shared<ModelAtomic<int>>(0);
      auto b = std::make_shared<ModelAtomic<int>>(0);
      Thread t1{[=] { a->store(1, std::memory_order_seq_cst); }};
      Thread t2{[=] {
        (same_object ? a : b)->store(2, std::memory_order_seq_cst);
      }};
      t1.join();
      t2.join();
    });
    EXPECT_TRUE(r.ok()) << r.summary();
    return r.schedules;
  };
  EXPECT_LE(count(/*same_object=*/false), count(/*same_object=*/true));
}

TEST(McChecker, BudgetExhaustionIsReported) {
  Options opts = small_exhaustive();
  opts.max_schedules = 1;
  const Result r = explore(opts, [] {
    auto a = std::make_shared<ModelAtomic<int>>(0);
    Thread t1{[=] { a->store(1, std::memory_order_seq_cst); }};
    Thread t2{[=] { a->store(2, std::memory_order_seq_cst); }};
    t1.join();
    t2.join();
  });
  EXPECT_EQ(r.schedules, 1u);
  EXPECT_TRUE(r.budget_exhausted);
}

TEST(McChecker, ParseScheduleRejectsMalformedInput) {
  EXPECT_EQ(parse_schedule("0,1,2"), (std::vector<int>{0, 1, 2}));
  EXPECT_THROW(parse_schedule(""), std::invalid_argument);
  EXPECT_THROW(parse_schedule("0,x"), std::invalid_argument);
  EXPECT_THROW(parse_schedule("0,-1"), std::invalid_argument);
}

TEST(McChecker, StepCapReportsLivelock) {
  Options opts = small_exhaustive();
  opts.max_steps = 50;
  opts.max_schedules = 4;
  const Result r = explore(opts, [] {
    auto a = std::make_shared<ModelAtomic<int>>(0);
    Thread spinner{[=] {
      for (;;) {
        if (a->load(std::memory_order_acquire) != 0) break;
      }
    }};
    Thread setter{[=] { a->store(1, std::memory_order_release); }};
    spinner.join();
    setter.join();
  });
  // Some schedule starves the setter long enough to trip the cap.
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.failures.front().kind, FailureKind::kStepCap);
}

}  // namespace
}  // namespace autopn::mc
