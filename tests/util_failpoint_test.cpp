// Unit tests of the failpoint injection framework: spec parsing, arming
// (programmatic + string), probability and one-shot budgets, pending specs
// for not-yet-registered sites, and the disarmed fast path.

#include "util/failpoint.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>

namespace autopn::util {
namespace {

// Each helper hosts one macro site (function-local static), exactly as
// production sites do.
bool hit_error_site() {
  bool fired = false;
  AUTOPN_FAILPOINT("test.fp.error", fired = true);
  return fired;
}

bool hit_pending_site() {
  bool fired = false;
  AUTOPN_FAILPOINT("test.fp.pending", fired = true);
  return fired;
}

void hit_delay_site() { AUTOPN_FAILPOINT("test.fp.delay"); }

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::instance().disarm_all(); }
};

TEST_F(FailpointTest, ParseSpecAcceptsAllKindsAndArgs) {
  const FailpointSpec plain = parse_failpoint_spec("error");
  EXPECT_EQ(plain.mode, FailpointMode::kError);
  EXPECT_DOUBLE_EQ(plain.probability, 1.0);
  EXPECT_EQ(plain.max_fires, -1);

  const FailpointSpec full = parse_failpoint_spec("error(p=0.25,n=3,d=2ms)");
  EXPECT_EQ(full.mode, FailpointMode::kError);
  EXPECT_DOUBLE_EQ(full.probability, 0.25);
  EXPECT_EQ(full.max_fires, 3);
  EXPECT_EQ(full.delay_us, 2000u);

  const FailpointSpec delay = parse_failpoint_spec("delay(d=500us)");
  EXPECT_EQ(delay.mode, FailpointMode::kDelay);
  EXPECT_EQ(delay.delay_us, 500u);

  EXPECT_EQ(parse_failpoint_spec("delay(d=1s)").delay_us, 1000000u);
  EXPECT_EQ(parse_failpoint_spec("off").mode, FailpointMode::kOff);
}

TEST_F(FailpointTest, ParseSpecRejectsMalformedInput) {
  EXPECT_THROW((void)parse_failpoint_spec("explode"), std::invalid_argument);
  EXPECT_THROW((void)parse_failpoint_spec("error(p=2.5)"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_failpoint_spec("error(q=1)"), std::invalid_argument);
  EXPECT_THROW((void)parse_failpoint_spec("delay"), std::invalid_argument);
  EXPECT_THROW((void)parse_failpoint_spec(""), std::invalid_argument);
}

TEST_F(FailpointTest, DisarmedSiteNeverFires) {
  if (!FailpointRegistry::compiled_in()) GTEST_SKIP();
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(hit_error_site());
  EXPECT_EQ(FailpointRegistry::instance().fire_count("test.fp.error"), 0u);
}

TEST_F(FailpointTest, ArmedErrorSiteFiresAndCounts) {
  if (!FailpointRegistry::compiled_in()) GTEST_SKIP();
  (void)hit_error_site();  // ensure the site is registered
  auto& registry = FailpointRegistry::instance();
  const std::uint64_t before = registry.fire_count("test.fp.error");
  FailpointSpec spec;
  spec.mode = FailpointMode::kError;
  registry.arm("test.fp.error", spec);
  EXPECT_TRUE(hit_error_site());
  EXPECT_TRUE(hit_error_site());
  EXPECT_EQ(registry.fire_count("test.fp.error"), before + 2);
  registry.disarm("test.fp.error");
  EXPECT_FALSE(hit_error_site());
}

TEST_F(FailpointTest, OneShotDisarmsItselfAfterFiring) {
  if (!FailpointRegistry::compiled_in()) GTEST_SKIP();
  auto& registry = FailpointRegistry::instance();
  FailpointSpec spec;
  spec.mode = FailpointMode::kError;
  spec.max_fires = 1;
  registry.arm("test.fp.error", spec);
  EXPECT_TRUE(hit_error_site());
  for (int i = 0; i < 20; ++i) EXPECT_FALSE(hit_error_site());
}

TEST_F(FailpointTest, ProbabilityRoughlyHonored) {
  if (!FailpointRegistry::compiled_in()) GTEST_SKIP();
  auto& registry = FailpointRegistry::instance();
  FailpointSpec spec;
  spec.mode = FailpointMode::kError;
  spec.probability = 0.5;
  registry.arm("test.fp.error", spec);
  int fired = 0;
  constexpr int kTrials = 2000;
  for (int i = 0; i < kTrials; ++i) fired += hit_error_site() ? 1 : 0;
  // Loose 5-sigma-ish band; a correct implementation essentially never
  // leaves it, a p treated as 0 or 1 always does.
  EXPECT_GT(fired, kTrials / 4);
  EXPECT_LT(fired, 3 * kTrials / 4);
}

TEST_F(FailpointTest, PendingSpecAppliesWhenSiteFirstRegisters) {
  if (!FailpointRegistry::compiled_in()) GTEST_SKIP();
  auto& registry = FailpointRegistry::instance();
  // Armed BEFORE hit_pending_site() ever executes — the registry must hold
  // the spec until the function-local static registers itself.
  FailpointSpec spec;
  spec.mode = FailpointMode::kError;
  registry.arm("test.fp.pending", spec);
  EXPECT_TRUE(hit_pending_site());
}

TEST_F(FailpointTest, DelayModeSleepsWithoutRunningTheAction) {
  if (!FailpointRegistry::compiled_in()) GTEST_SKIP();
  auto& registry = FailpointRegistry::instance();
  registry.arm_from_string("test.fp.delay=delay(d=5ms)");
  const auto start = std::chrono::steady_clock::now();
  hit_delay_site();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds{4});
  EXPECT_GE(registry.fire_count("test.fp.delay"), 1u);
}

TEST_F(FailpointTest, ArmFromStringHandlesMultipleSpecsAndErrors) {
  auto& registry = FailpointRegistry::instance();
  registry.arm_from_string(
      "test.fp.error=error(p=0.5);test.fp.delay=delay(d=1ms)");
  if (FailpointRegistry::compiled_in()) {
    (void)hit_error_site();
    (void)hit_delay_site();
    bool saw_error = false;
    bool saw_delay = false;
    for (const auto& entry : registry.list()) {
      if (entry.name == "test.fp.error") saw_error = entry.armed;
      if (entry.name == "test.fp.delay") saw_delay = entry.armed;
    }
    EXPECT_TRUE(saw_error);
    EXPECT_TRUE(saw_delay);
  }
  EXPECT_THROW(registry.arm_from_string("missing-equals"),
               std::invalid_argument);
  EXPECT_THROW(registry.arm_from_string("a=explode"), std::invalid_argument);
}

TEST_F(FailpointTest, DisarmAllSilencesEverySite) {
  if (!FailpointRegistry::compiled_in()) GTEST_SKIP();
  auto& registry = FailpointRegistry::instance();
  registry.arm_from_string("test.fp.error=error;test.fp.pending=error");
  registry.disarm_all();
  EXPECT_FALSE(hit_error_site());
  EXPECT_FALSE(hit_pending_site());
  for (const auto& entry : registry.list()) EXPECT_FALSE(entry.armed);
}

}  // namespace
}  // namespace autopn::util
