// Tests for the heterogeneous-transaction-types extension (paper §VIII).
#include <gtest/gtest.h>

#include <cmath>

#include "opt/hetero.hpp"

namespace autopn::opt {
namespace {

TEST(HeteroConfigTest, CoresUsedAndToString) {
  HeteroConfig cfg;
  cfg.per_type = {Config{4, 2}, Config{3, 1}};
  EXPECT_EQ(cfg.cores_used(), 11);
  EXPECT_EQ(cfg.to_string(), "[(4,2) (3,1)]");
}

TEST(HeteroSpaceTest, ValidityRules) {
  HeteroSpace space{16, 2};
  HeteroConfig ok;
  ok.per_type = {Config{4, 2}, Config{4, 2}};  // 16 total
  EXPECT_TRUE(space.valid(ok));
  HeteroConfig over;
  over.per_type = {Config{4, 3}, Config{4, 2}};  // 20 total
  EXPECT_FALSE(space.valid(over));
  HeteroConfig wrong_arity;
  wrong_arity.per_type = {Config{1, 1}};
  EXPECT_FALSE(space.valid(wrong_arity));
  HeteroConfig degenerate;
  degenerate.per_type = {Config{0, 1}, Config{1, 1}};
  EXPECT_FALSE(space.valid(degenerate));
}

TEST(HeteroSpaceTest, SequentialStart) {
  HeteroSpace space{8, 3};
  const HeteroConfig seq = space.sequential();
  EXPECT_EQ(seq.per_type.size(), 3u);
  EXPECT_EQ(seq.cores_used(), 3);
  EXPECT_TRUE(space.valid(seq));
}

TEST(HeteroSpaceTest, BudgetForFreezesOthers) {
  HeteroSpace space{16, 2};
  HeteroConfig cfg;
  cfg.per_type = {Config{2, 3}, Config{1, 1}};  // type 0 uses 6
  EXPECT_EQ(space.budget_for(cfg, 0), 15);      // 16 - 1
  EXPECT_EQ(space.budget_for(cfg, 1), 10);      // 16 - 6
}

TEST(HeteroSpaceTest, RejectsImpossibleShapes) {
  EXPECT_THROW((HeteroSpace{4, 0}), std::invalid_argument);
  EXPECT_THROW((HeteroSpace{2, 3}), std::invalid_argument);
}

/// Separable two-type objective with different optima per type.
double separable(const HeteroConfig& cfg) {
  const Config& a = cfg.per_type[0];
  const Config& b = cfg.per_type[1];
  // Type 0 wants (8, 1); type 1 wants (1, 4).
  const double fa = 100.0 * std::exp(-std::pow((a.t - 8) / 3.0, 2) -
                                     std::pow((a.c - 1) / 1.5, 2));
  const double fb = 100.0 * std::exp(-std::pow((b.t - 1) / 1.5, 2) -
                                     std::pow((b.c - 4) / 2.0, 2));
  return fa + fb;
}

TEST(HeteroTuner, ProposalsAlwaysValid) {
  HeteroSpace space{16, 2};
  HeteroCoordinateTuner tuner{space, {}, 1};
  int steps = 0;
  while (auto proposal = tuner.propose()) {
    EXPECT_TRUE(space.valid(*proposal)) << proposal->to_string();
    tuner.observe(*proposal, separable(*proposal));
    if (++steps > 500) FAIL() << "tuner did not converge";
  }
}

TEST(HeteroTuner, FindsPerTypeOptimaOnSeparableObjective) {
  HeteroSpace space{16, 2};
  HeteroCoordinateTuner tuner{space, {}, 2};
  while (auto proposal = tuner.propose()) {
    tuner.observe(*proposal, separable(*proposal));
  }
  const HeteroConfig best = tuner.best();
  EXPECT_NEAR(separable(best), 200.0, 10.0) << best.to_string();
  EXPECT_EQ(best.per_type[0], (Config{8, 1}));
  EXPECT_EQ(best.per_type[1], (Config{1, 4}));
}

TEST(HeteroTuner, BeatsSharedConfigOnAsymmetricObjective) {
  HeteroSpace space{16, 2};
  HeteroCoordinateTuner tuner{space, {}, 3};
  while (auto proposal = tuner.propose()) {
    tuner.observe(*proposal, separable(*proposal));
  }
  // Best shared configuration: evaluate every (t,c) used for both types.
  double best_shared = 0.0;
  ConfigSpace shared_space{8};  // 2 * t * c <= 16
  for (const Config& cfg : shared_space.all()) {
    HeteroConfig joint;
    joint.per_type = {cfg, cfg};
    best_shared = std::max(best_shared, separable(joint));
  }
  EXPECT_GT(tuner.best_kpi(), best_shared * 1.2);
}

TEST(HeteroTuner, StopsWhenSweepChangesNothing) {
  // Constant objective: the first sweep picks something, the second sweep
  // changes nothing, so rounds_completed stays small.
  HeteroSpace space{8, 2};
  HeteroTunerParams params;
  params.max_rounds = 5;
  HeteroCoordinateTuner tuner{space, params, 4};
  while (auto proposal = tuner.propose()) {
    tuner.observe(*proposal, 42.0);
  }
  EXPECT_LE(tuner.rounds_completed(), 2u);
}

TEST(HeteroTuner, RespectsMaxRounds) {
  HeteroSpace space{16, 2};
  HeteroTunerParams params;
  params.max_rounds = 1;
  HeteroCoordinateTuner tuner{space, params, 5};
  int steps = 0;
  while (auto proposal = tuner.propose()) {
    // Ever-improving noisy objective would keep changing choices; max_rounds
    // must still terminate the process.
    tuner.observe(*proposal, static_cast<double>(++steps));
  }
  EXPECT_EQ(tuner.rounds_completed(), 1u);
}

TEST(HeteroTuner, ThreeTypes) {
  HeteroSpace space{24, 3};
  HeteroCoordinateTuner tuner{space, {}, 6};
  auto objective = [](const HeteroConfig& cfg) {
    double total = 0.0;
    for (const Config& c : cfg.per_type) {
      total += 10.0 * c.t / (1.0 + 0.2 * c.t) + 2.0 * c.c;
    }
    return total;
  };
  while (auto proposal = tuner.propose()) {
    tuner.observe(*proposal, objective(*proposal));
  }
  EXPECT_TRUE(space.valid(tuner.best()));
  EXPECT_GT(tuner.best_kpi(), objective(space.sequential()));
}

}  // namespace
}  // namespace autopn::opt
