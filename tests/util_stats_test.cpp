// Unit and property tests for streaming statistics, percentiles and
// histograms — the machinery behind the CV-based KPI monitor (paper §VI).
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace autopn::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of that classic sequence is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, CvMatchesDefinition) {
  RunningStats s;
  for (double x : {10.0, 12.0, 8.0, 11.0, 9.0}) s.add(x);
  EXPECT_NEAR(s.cv(), s.stddev() / s.mean(), 1e-15);
}

TEST(RunningStats, CvOfConstantIsZero) {
  RunningStats s;
  for (int i = 0; i < 10; ++i) s.add(3.14);
  EXPECT_NEAR(s.cv(), 0.0, 1e-12);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(1.0);
  s.add(2.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng{21};
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gaussian(3.0, 1.5);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, MedianOfOdd) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Percentile, Interpolates) {
  // p25 of {1,2,3,4} with linear interpolation = 1.75.
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 0.25), 1.75);
}

TEST(Percentile, Extremes) {
  const std::vector<double> v{5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.9), 7.0);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW((void)percentile({}, 0.5), std::invalid_argument);
}

TEST(Percentile, ClampedQuantile) {
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, -1.0), 1.0);
}

TEST(VectorHelpers, MeanAndStddev) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(v), 2.5);
  EXPECT_NEAR(stddev_of(v), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev_of({1.0}), 0.0);
}

TEST(Histogram, BinsCorrectly) {
  Histogram h{0.0, 10.0, 5};
  h.add(0.5);   // bin 0
  h.add(3.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h{0.0, 1.0, 2};
  h.add(-5.0);
  h.add(42.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 1u);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram(1.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

// Property sweep: CV of throughput samples shrinks as more samples arrive
// from a stationary process — the premise of the monitor's stability test.
class CvConvergence : public ::testing::TestWithParam<double> {};

TEST_P(CvConvergence, CvOfRunningMeanShrinks) {
  const double noise = GetParam();
  Rng rng{99};
  RunningStats throughputs;
  std::vector<double> cv_trace;
  for (int i = 0; i < 400; ++i) {
    throughputs.add(100.0 * (1.0 + noise * rng.gaussian()));
    if (i >= 10 && i % 50 == 0) cv_trace.push_back(throughputs.cv());
  }
  // CV stabilizes near the generating noise level rather than diverging.
  EXPECT_NEAR(cv_trace.back(), noise, noise * 0.5 + 0.01);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, CvConvergence,
                         ::testing::Values(0.01, 0.05, 0.1, 0.3));

}  // namespace
}  // namespace autopn::util
