// Shard health state machine and membership-log tests: every edge of the
// kHealthy/kSuspect/kDead/kProbation/kRetiring machine driven
// deterministically (the machine is pure — no sockets, no clocks), plus the
// log-fold property that makes placement reproducible: two routers replaying
// the same membership log build identical rings and therefore place every
// tenant identically.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "router/health.hpp"
#include "router/ring.hpp"
#include "util/rng.hpp"

namespace autopn::router {
namespace {

constexpr HealthObservation kOk{/*connected=*/true, /*poll_ok=*/true,
                                /*budget_exhausted=*/false};
constexpr HealthObservation kMiss{/*connected=*/true, /*poll_ok=*/false,
                                  /*budget_exhausted=*/false};
constexpr HealthObservation kDown{/*connected=*/false, /*poll_ok=*/false,
                                  /*budget_exhausted=*/false};
constexpr HealthObservation kBudgetBurned{/*connected=*/false,
                                          /*poll_ok=*/false,
                                          /*budget_exhausted=*/true};

TEST(RouterHealth, HealthyDegradesToSuspectThenDeadOnMisses) {
  ShardHealth health{{/*suspect_after=*/2, /*dead_after=*/4,
                      /*probation_passes=*/3}};
  EXPECT_EQ(health.state(), HealthState::kHealthy);

  // One miss: still healthy, counter accrues.
  EXPECT_FALSE(health.tick(kMiss).has_value());
  EXPECT_EQ(health.state(), HealthState::kHealthy);
  EXPECT_EQ(health.misses(), 1u);

  // Second consecutive miss crosses suspect_after.
  const auto to_suspect = health.tick(kMiss);
  ASSERT_TRUE(to_suspect.has_value());
  EXPECT_EQ(to_suspect->from, HealthState::kHealthy);
  EXPECT_EQ(to_suspect->to, HealthState::kSuspect);

  // Third miss holds suspect; the fourth crosses dead_after.
  EXPECT_FALSE(health.tick(kMiss).has_value());
  EXPECT_EQ(health.state(), HealthState::kSuspect);
  const auto to_dead = health.tick(kMiss);
  ASSERT_TRUE(to_dead.has_value());
  EXPECT_EQ(to_dead->from, HealthState::kSuspect);
  EXPECT_EQ(to_dead->to, HealthState::kDead);
}

TEST(RouterHealth, PollOkResetsTheMissCounter) {
  ShardHealth health{{/*suspect_after=*/2, /*dead_after=*/10,
                      /*probation_passes=*/3}};
  EXPECT_FALSE(health.tick(kMiss).has_value());
  EXPECT_FALSE(health.tick(kOk).has_value());
  EXPECT_EQ(health.misses(), 0u);
  // Misses must again be consecutive to degrade.
  EXPECT_FALSE(health.tick(kMiss).has_value());
  EXPECT_EQ(health.state(), HealthState::kHealthy);
}

TEST(RouterHealth, SuspectRecoversOnPollOk) {
  ShardHealth health{{/*suspect_after=*/1, /*dead_after=*/10,
                      /*probation_passes=*/3}};
  ASSERT_TRUE(health.tick(kMiss).has_value());
  ASSERT_EQ(health.state(), HealthState::kSuspect);
  const auto back = health.tick(kOk);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->from, HealthState::kSuspect);
  EXPECT_EQ(back->to, HealthState::kHealthy);
  EXPECT_EQ(health.misses(), 0u);
}

TEST(RouterHealth, BudgetExhaustionIsTheFastPathToDead) {
  // From healthy: the burned redial budget skips kSuspect entirely.
  ShardHealth health;
  const auto fast = health.tick(kBudgetBurned);
  ASSERT_TRUE(fast.has_value());
  EXPECT_EQ(fast->from, HealthState::kHealthy);
  EXPECT_EQ(fast->to, HealthState::kDead);

  // From suspect too, well before dead_after misses.
  ShardHealth suspect{{/*suspect_after=*/1, /*dead_after=*/100,
                       /*probation_passes=*/3}};
  ASSERT_TRUE(suspect.tick(kMiss).has_value());
  ASSERT_EQ(suspect.state(), HealthState::kSuspect);
  const auto dead = suspect.tick(kBudgetBurned);
  ASSERT_TRUE(dead.has_value());
  EXPECT_EQ(dead->to, HealthState::kDead);
}

TEST(RouterHealth, DeadRecoversThroughProbation) {
  ShardHealth health{{/*suspect_after=*/1, /*dead_after=*/2,
                      /*probation_passes=*/3}};
  ASSERT_TRUE(health.tick(kDown).has_value());   // -> suspect
  ASSERT_TRUE(health.tick(kDown).has_value());   // -> dead
  ASSERT_EQ(health.state(), HealthState::kDead);

  // Reconnect starts probation; ring re-entry must be EARNED.
  const auto probation = health.tick(kOk);
  ASSERT_TRUE(probation.has_value());
  EXPECT_EQ(probation->from, HealthState::kDead);
  EXPECT_EQ(probation->to, HealthState::kProbation);

  // Two clean polls are not enough at probation_passes = 3...
  EXPECT_FALSE(health.tick(kOk).has_value());
  EXPECT_FALSE(health.tick(kOk).has_value());
  EXPECT_EQ(health.state(), HealthState::kProbation);
  EXPECT_EQ(health.passes(), 2u);

  // ...the third consecutive pass rejoins as healthy.
  const auto healed = health.tick(kOk);
  ASSERT_TRUE(healed.has_value());
  EXPECT_EQ(healed->from, HealthState::kProbation);
  EXPECT_EQ(healed->to, HealthState::kHealthy);
}

TEST(RouterHealth, ProbationMissResetsPassesAndDisconnectKillsIt) {
  ShardHealth health{{/*suspect_after=*/1, /*dead_after=*/2,
                      /*probation_passes=*/2}};
  ASSERT_TRUE(health.tick(kDown).has_value());  // -> suspect
  ASSERT_TRUE(health.tick(kDown).has_value());  // -> dead
  ASSERT_TRUE(health.tick(kOk).has_value());    // -> probation

  // A connected-but-silent tick resets the consecutive-pass counter.
  EXPECT_FALSE(health.tick(kOk).has_value());
  EXPECT_EQ(health.passes(), 1u);
  EXPECT_FALSE(health.tick(kMiss).has_value());
  EXPECT_EQ(health.passes(), 0u);
  EXPECT_EQ(health.state(), HealthState::kProbation);

  // Losing the connection during probation falls straight back to dead.
  const auto relapse = health.tick(kDown);
  ASSERT_TRUE(relapse.has_value());
  EXPECT_EQ(relapse->from, HealthState::kProbation);
  EXPECT_EQ(relapse->to, HealthState::kDead);
}

TEST(RouterHealth, RetiringIsTerminalUnderTicks) {
  ShardHealth health;
  health.force(HealthState::kRetiring);
  for (const auto& obs : {kOk, kMiss, kDown, kBudgetBurned}) {
    EXPECT_FALSE(health.tick(obs).has_value());
    EXPECT_EQ(health.state(), HealthState::kRetiring);
  }
}

TEST(RouterHealth, ForceResetsCounters) {
  ShardHealth health{{/*suspect_after=*/3, /*dead_after=*/10,
                      /*probation_passes=*/3}};
  (void)health.tick(kMiss);
  (void)health.tick(kMiss);
  EXPECT_EQ(health.misses(), 2u);
  health.force(HealthState::kProbation);
  EXPECT_EQ(health.state(), HealthState::kProbation);
  EXPECT_EQ(health.misses(), 0u);
  EXPECT_EQ(health.passes(), 0u);
}

TEST(RouterHealth, RingMembersFoldsTheLog) {
  std::vector<MembershipRecord> log;
  std::uint64_t seq = 0;
  const auto append = [&](MembershipEvent event, std::uint32_t shard) {
    log.push_back({++seq, event, shard});
  };

  // Bootstrap: two shards admitted and joined.
  append(MembershipEvent::kAdmit, 0);
  append(MembershipEvent::kJoin, 0);
  append(MembershipEvent::kAdmit, 1);
  append(MembershipEvent::kJoin, 1);
  EXPECT_EQ(ring_members(log), (std::vector<std::uint32_t>{0, 1}));

  // A runtime admit alone does NOT place the shard.
  append(MembershipEvent::kAdmit, 2);
  EXPECT_EQ(ring_members(log), (std::vector<std::uint32_t>{0, 1}));

  // Probation passed: join. Then shard 1 dies and is evicted.
  append(MembershipEvent::kJoin, 2);
  append(MembershipEvent::kEvict, 1);
  EXPECT_EQ(ring_members(log), (std::vector<std::uint32_t>{0, 2}));

  // Recovery re-joins; an administrative retire removes again.
  append(MembershipEvent::kJoin, 1);
  append(MembershipEvent::kRetire, 2);
  EXPECT_EQ(ring_members(log), (std::vector<std::uint32_t>{0, 1}));
}

// The property the membership log exists for: placement is a pure function
// of the ring contents, and the ring contents are a pure fold of the log —
// so two routers that observed the same ordered log place every tenant on
// the same shard, without ever talking to each other. Random churn
// histories; both "routers" are HashRings rebuilt independently.
TEST(RouterHealth, TwoRoutersReplayingTheSameLogPlaceIdentically) {
  util::Rng rng{20260809};
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<MembershipRecord> log;
    std::uint64_t seq = 0;
    std::vector<std::uint32_t> in_ring;
    std::vector<std::uint32_t> out_of_ring{0, 1, 2, 3, 4, 5, 6, 7};

    const int steps = static_cast<int>(rng.uniform_int(1, 24));
    for (int i = 0; i < steps; ++i) {
      const bool join = out_of_ring.empty()
                            ? false
                            : (in_ring.empty() || rng.uniform_int(0, 1) == 0);
      if (join) {
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(out_of_ring.size()) - 1));
        const std::uint32_t shard = out_of_ring[pick];
        out_of_ring.erase(out_of_ring.begin() +
                          static_cast<std::ptrdiff_t>(pick));
        in_ring.push_back(shard);
        log.push_back({++seq, MembershipEvent::kAdmit, shard});
        log.push_back({++seq, MembershipEvent::kJoin, shard});
      } else {
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(in_ring.size()) - 1));
        const std::uint32_t shard = in_ring[pick];
        in_ring.erase(in_ring.begin() + static_cast<std::ptrdiff_t>(pick));
        out_of_ring.push_back(shard);
        log.push_back({++seq,
                       rng.uniform_int(0, 1) == 0 ? MembershipEvent::kEvict
                                                  : MembershipEvent::kRetire,
                       shard});
      }
    }

    // Router A replays the full log; router B folds it through
    // ring_members() — different code paths, same ring required.
    HashRing router_a;
    for (const MembershipRecord& rec : log) {
      switch (rec.event) {
        case MembershipEvent::kAdmit:
          break;
        case MembershipEvent::kJoin:
          router_a.add_shard(rec.shard_id);
          break;
        case MembershipEvent::kEvict:
        case MembershipEvent::kRetire:
          router_a.remove_shard(rec.shard_id);
          break;
      }
    }
    HashRing router_b;
    for (const std::uint32_t shard : ring_members(log)) {
      router_b.add_shard(shard);
    }
    ASSERT_EQ(router_a.shards(), router_b.shards()) << "trial " << trial;

    // Same ring ⇒ same owner for every tenant (spot-check the full u16
    // tenant space coarsely, boundaries exactly).
    if (router_a.shard_count() == 0) continue;
    for (std::uint32_t tenant = 0; tenant < 65536; tenant += 257) {
      const auto a = router_a.owner_of_tenant(static_cast<std::uint16_t>(tenant));
      const auto b = router_b.owner_of_tenant(static_cast<std::uint16_t>(tenant));
      ASSERT_EQ(a, b) << "trial " << trial << " tenant " << tenant;
    }
  }
}

}  // namespace
}  // namespace autopn::router
