// Correctness tests for the three benchmark ports: invariants must hold
// under concurrent execution at various (t, c) settings.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "workloads/array_bench.hpp"
#include "workloads/tpcc.hpp"
#include "workloads/vacation.hpp"

namespace autopn::workloads {
namespace {

stm::StmConfig cfg(std::size_t top, std::size_t children) {
  stm::StmConfig c;
  c.max_cores = 8;
  c.pool_threads = 2;
  c.initial_top = top;
  c.initial_children = children;
  return c;
}

// ---- Array ------------------------------------------------------------

TEST(ArrayWorkload, ReadOnlyScanLeavesArrayUntouched) {
  stm::Stm stm{cfg(2, 2)};
  ArrayConfig acfg;
  acfg.array_size = 128;
  acfg.update_fraction = 0.0;
  ArrayBenchmark bench{stm, acfg};
  util::Rng rng{1};
  bench.run_many(20, rng);
  EXPECT_EQ(bench.checksum(), 0);
  EXPECT_EQ(bench.committed_updates(), 0);
}

TEST(ArrayWorkload, ChecksumMatchesUpdateCounter) {
  // Core invariant: every committed update added exactly 1 to one element
  // and 1 to the counter, even across aborts/retries.
  stm::Stm stm{cfg(3, 2)};
  ArrayConfig acfg;
  acfg.array_size = 64;
  acfg.update_fraction = 0.5;
  ArrayBenchmark bench{stm, acfg};
  std::vector<std::jthread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&bench, t] {
      util::Rng rng{static_cast<std::uint64_t>(10 + t)};
      bench.run_many(15, rng);
    });
  }
  threads.clear();
  EXPECT_EQ(bench.checksum(), bench.committed_updates());
  EXPECT_GT(bench.committed_updates(), 0);
  EXPECT_EQ(stm.stats().top_commits, 45u);
}

TEST(ArrayWorkload, HighUpdateFractionCausesTopLevelConflicts) {
  stm::Stm stm{cfg(4, 1)};
  ArrayConfig acfg;
  acfg.array_size = 32;
  acfg.update_fraction = 0.9;
  ArrayBenchmark bench{stm, acfg};
  std::vector<std::jthread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&bench, t] {
      util::Rng rng{static_cast<std::uint64_t>(20 + t)};
      bench.run_many(10, rng);
    });
  }
  threads.clear();
  EXPECT_EQ(bench.checksum(), bench.committed_updates());
  EXPECT_GT(stm.stats().top_aborts, 0u);  // full-array scans must collide
}

TEST(ArrayWorkload, SegmentationCoversWholeArrayForAnyChildLimit) {
  for (std::size_t c : {1u, 2u, 3u, 5u, 8u}) {
    stm::Stm stm{cfg(1, c)};
    ArrayConfig acfg;
    acfg.array_size = 37;  // not divisible by typical c
    acfg.update_fraction = 1.0;
    ArrayBenchmark bench{stm, acfg};
    util::Rng rng{static_cast<std::uint64_t>(c)};
    bench.run_one(rng);
    // Every element updated exactly once.
    EXPECT_EQ(bench.checksum(), 37) << "c=" << c;
  }
}

// ---- Vacation ---------------------------------------------------------

TEST(VacationWorkload, ReservationsAreConserved) {
  stm::Stm stm{cfg(3, 2)};
  VacationConfig vcfg;
  vcfg.relations = 16;
  vcfg.customers = 16;
  VacationBenchmark bench{stm, vcfg};
  std::vector<std::jthread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&bench, t] {
      util::Rng rng{static_cast<std::uint64_t>(30 + t)};
      bench.run_many(40, rng);
    });
  }
  threads.clear();
  EXPECT_TRUE(bench.verify_consistency());
}

TEST(VacationWorkload, MakeThenDeleteRestoresCapacity) {
  stm::Stm stm{cfg(1, 2)};
  VacationConfig vcfg;
  vcfg.relations = 8;
  vcfg.customers = 4;
  VacationBenchmark bench{stm, vcfg};
  util::Rng rng{7};
  const int reserved = bench.make_reservation(0, rng);
  EXPECT_GT(reserved, 0);
  EXPECT_GT(bench.query_customer_total(0), 0);
  bench.delete_customer_reservations(0);
  EXPECT_EQ(bench.query_customer_total(0), 0);
  EXPECT_TRUE(bench.verify_consistency());
}

TEST(VacationWorkload, CapacityNeverExceeded) {
  // Tiny table with tiny capacity: concurrent reservations must never
  // oversell (used <= capacity is part of verify_consistency).
  stm::Stm stm{cfg(4, 2)};
  VacationConfig vcfg;
  vcfg.relations = 2;
  vcfg.customers = 8;
  vcfg.initial_capacity = 3;
  vcfg.make_fraction = 1.0;
  vcfg.delete_fraction = 0.0;
  vcfg.update_fraction = 0.0;
  VacationBenchmark bench{stm, vcfg};
  std::vector<std::jthread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&bench, t] {
      util::Rng rng{static_cast<std::uint64_t>(40 + t)};
      bench.run_many(20, rng);
    });
  }
  threads.clear();
  EXPECT_TRUE(bench.verify_consistency());
}

TEST(VacationWorkload, ManagerUpdatesKeepConsistency) {
  stm::Stm stm{cfg(2, 2)};
  VacationConfig vcfg;
  vcfg.relations = 8;
  vcfg.customers = 8;
  vcfg.make_fraction = 0.5;
  vcfg.delete_fraction = 0.2;
  vcfg.update_fraction = 0.3;
  VacationBenchmark bench{stm, vcfg};
  std::vector<std::jthread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&bench, t] {
      util::Rng rng{static_cast<std::uint64_t>(50 + t)};
      bench.run_many(60, rng);
    });
  }
  threads.clear();
  EXPECT_TRUE(bench.verify_consistency());
}

// ---- TPC-C ------------------------------------------------------------

TEST(TpccWorkload, NewOrderUpdatesStockAndOrders) {
  stm::Stm stm{cfg(1, 2)};
  TpccConfig tcfg;
  tcfg.warehouses = 1;
  tcfg.items = 50;
  TpccBenchmark bench{stm, tcfg};
  util::Rng rng{8};
  const long long total = bench.new_order(0, 0, 0, rng);
  EXPECT_GT(total, 0);
  EXPECT_EQ(bench.new_orders_committed(), 1);
  EXPECT_TRUE(bench.verify_consistency());
}

TEST(TpccWorkload, PaymentFlowsToWarehouseDistrictCustomer) {
  stm::Stm stm{cfg(1, 1)};
  TpccConfig tcfg;
  tcfg.warehouses = 1;
  tcfg.items = 10;
  TpccBenchmark bench{stm, tcfg};
  bench.payment(0, 0, 0, 500);
  bench.payment(0, 1, 0, 300);
  EXPECT_TRUE(bench.verify_consistency());
}

TEST(TpccWorkload, OrderStatusFindsLatestOrder) {
  stm::Stm stm{cfg(1, 2)};
  TpccConfig tcfg;
  tcfg.warehouses = 1;
  tcfg.items = 50;
  TpccBenchmark bench{stm, tcfg};
  util::Rng rng{9};
  const long long total = bench.new_order(0, 0, 3, rng);
  EXPECT_EQ(bench.order_status(0, 0, 3), total);
  EXPECT_EQ(bench.order_status(0, 0, 4), 0);  // no order for this customer
}

TEST(TpccWorkload, DeliveryCreditsCustomerAndAdvancesWatermark) {
  stm::Stm stm{cfg(1, 4)};
  TpccConfig tcfg;
  tcfg.warehouses = 1;
  tcfg.districts_per_warehouse = 3;
  tcfg.items = 30;
  TpccBenchmark bench{stm, tcfg};
  util::Rng rng{17};
  // One order in each of two districts.
  const long long total0 = bench.new_order(0, 0, 2, rng);
  const long long total1 = bench.new_order(0, 1, 3, rng);
  // Delivery sweeps all districts in parallel children.
  EXPECT_EQ(bench.delivery(0), 2);
  EXPECT_TRUE(bench.verify_consistency());
  // A second delivery has nothing left.
  EXPECT_EQ(bench.delivery(0), 0);
  EXPECT_GT(total0 + total1, 0);
}

TEST(TpccWorkload, DeliveryMoneyConservation) {
  // Balances = delivered totals - payments (checked by verify_consistency).
  stm::Stm stm{cfg(1, 2)};
  TpccConfig tcfg;
  tcfg.warehouses = 1;
  tcfg.districts_per_warehouse = 2;
  tcfg.items = 20;
  TpccBenchmark bench{stm, tcfg};
  util::Rng rng{18};
  (void)bench.new_order(0, 0, 1, rng);
  bench.payment(0, 0, 1, 250);
  EXPECT_TRUE(bench.verify_consistency());
  (void)bench.delivery(0);
  EXPECT_TRUE(bench.verify_consistency());
}

TEST(TpccWorkload, StockLevelCountsLowStock) {
  stm::Stm stm{cfg(1, 2)};
  TpccConfig tcfg;
  tcfg.warehouses = 1;
  tcfg.districts_per_warehouse = 1;
  tcfg.items = 10;
  TpccBenchmark bench{stm, tcfg};
  util::Rng rng{19};
  // No orders yet: nothing to count.
  EXPECT_EQ(bench.stock_level(0, 0, /*threshold=*/2000), 0);
  (void)bench.new_order(0, 0, 0, rng);
  // Threshold above the initial quantity: every ordered item counts.
  const int high = bench.stock_level(0, 0, /*threshold=*/2000);
  EXPECT_GT(high, 0);
  // Threshold of 0: no stock row can be below it.
  EXPECT_EQ(bench.stock_level(0, 0, /*threshold=*/0), 0);
}

TEST(TpccWorkload, FullMixWithDeliveriesStaysConsistent) {
  stm::Stm stm{cfg(3, 3)};
  TpccConfig tcfg;
  tcfg.warehouses = 2;
  tcfg.districts_per_warehouse = 3;
  tcfg.items = 30;
  tcfg.customers_per_district = 4;
  tcfg.new_order_fraction = 0.4;
  tcfg.payment_fraction = 0.3;
  tcfg.order_status_fraction = 0.1;
  tcfg.delivery_fraction = 0.15;
  TpccBenchmark bench{stm, tcfg};
  std::vector<std::jthread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&bench, t] {
      util::Rng rng{static_cast<std::uint64_t>(80 + t)};
      bench.run_many(40, rng);
    });
  }
  threads.clear();
  EXPECT_TRUE(bench.verify_consistency());
}

TEST(TpccWorkload, ConcurrentMixedLoadStaysConsistent) {
  stm::Stm stm{cfg(4, 2)};
  TpccConfig tcfg;
  tcfg.warehouses = 2;
  tcfg.items = 40;
  tcfg.customers_per_district = 5;
  tcfg.districts_per_warehouse = 3;
  TpccBenchmark bench{stm, tcfg};
  std::vector<std::jthread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&bench, t] {
      util::Rng rng{static_cast<std::uint64_t>(60 + t)};
      bench.run_many(30, rng);
    });
  }
  threads.clear();
  EXPECT_TRUE(bench.verify_consistency());
  EXPECT_GT(bench.new_orders_committed(), 0);
}

TEST(TpccWorkload, SingleWarehouseIsHighContention) {
  // One warehouse, one district: every new-order serializes on the district
  // row; concurrent execution must produce aborts yet keep order ids dense.
  stm::Stm stm{cfg(4, 2)};
  TpccConfig tcfg;
  tcfg.warehouses = 1;
  tcfg.districts_per_warehouse = 1;
  tcfg.items = 30;
  tcfg.new_order_fraction = 1.0;
  tcfg.payment_fraction = 0.0;
  TpccBenchmark bench{stm, tcfg};
  std::vector<std::jthread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&bench, t] {
      util::Rng rng{static_cast<std::uint64_t>(70 + t)};
      for (int i = 0; i < 10; ++i) (void)bench.new_order(0, 0, 0, rng);
    });
  }
  threads.clear();
  EXPECT_EQ(bench.new_orders_committed(), 40);
  EXPECT_TRUE(bench.verify_consistency());
  EXPECT_GT(stm.stats().top_aborts, 0u);
}

// Property sweep: invariants hold across (t, c) settings for all three
// workloads under the same concurrent drive.
struct TcParam {
  std::size_t t;
  std::size_t c;
};
class WorkloadInvariantSweep : public ::testing::TestWithParam<TcParam> {};

TEST_P(WorkloadInvariantSweep, AllBenchmarksStayConsistent) {
  const auto [top, children] = GetParam();
  stm::Stm stm{cfg(top, children)};

  ArrayConfig acfg;
  acfg.array_size = 48;
  acfg.update_fraction = 0.3;
  ArrayBenchmark array{stm, acfg};

  VacationConfig vcfg;
  vcfg.relations = 8;
  vcfg.customers = 8;
  VacationBenchmark vacation{stm, vcfg};

  TpccConfig tcfg;
  tcfg.warehouses = 1;
  tcfg.districts_per_warehouse = 2;
  tcfg.items = 20;
  tcfg.customers_per_district = 4;
  TpccBenchmark tpcc{stm, tcfg};

  std::vector<std::jthread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      util::Rng rng{static_cast<std::uint64_t>(100 + t)};
      for (int i = 0; i < 8; ++i) {
        array.run_one(rng);
        vacation.run_one(rng);
        tpcc.run_one(rng);
      }
    });
  }
  threads.clear();
  EXPECT_EQ(array.checksum(), array.committed_updates());
  EXPECT_TRUE(vacation.verify_consistency());
  EXPECT_TRUE(tpcc.verify_consistency());
}

INSTANTIATE_TEST_SUITE_P(TcGrid, WorkloadInvariantSweep,
                         ::testing::Values(TcParam{1, 1}, TcParam{1, 4},
                                           TcParam{2, 2}, TcParam{4, 1},
                                           TcParam{4, 2}, TcParam{8, 1}));

}  // namespace
}  // namespace autopn::workloads
