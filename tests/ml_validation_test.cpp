// Tests for k-fold cross-validation, plus a surrogate bake-off asserting the
// paper's model choice: on piecewise-linear performance surfaces, M5 model
// trees generalize better than a single linear model.
#include <gtest/gtest.h>

#include <array>

#include "ml/knn.hpp"
#include "ml/linear.hpp"
#include "ml/m5tree.hpp"
#include "ml/validation.hpp"
#include "util/rng.hpp"

namespace autopn::ml {
namespace {

Dataset surface_data(std::size_t n, std::uint64_t seed) {
  util::Rng rng{seed};
  Dataset data{2};
  for (std::size_t i = 0; i < n; ++i) {
    const double t = 1.0 + static_cast<double>(rng.uniform_index(48));
    const double c = 1.0 + static_cast<double>(rng.uniform_index(8));
    // Piecewise regime: throughput collapses above a contention knee.
    const double base = t < 20 ? 50.0 * t : 1000.0 - 10.0 * (t - 20);
    data.add(std::array{t, c}, base + 5.0 * c + rng.gaussian(0.0, 10.0));
  }
  return data;
}

ModelFactory linear_factory() {
  return [](const Dataset& train) {
    auto model = LinearModel::fit(train);
    return [model](std::span<const double> x) { return model.predict(x); };
  };
}

ModelFactory m5_factory() {
  return [](const Dataset& train) {
    auto model = M5Tree::fit(train);
    return [model](std::span<const double> x) { return model.predict(x); };
  };
}

ModelFactory knn_factory(std::size_t k) {
  return [k](const Dataset& train) {
    KnnRegressor model{train, k};
    return [model](std::span<const double> x) { return model.predict(x).mean; };
  };
}

TEST(CrossValidation, PerfectModelHasZeroError) {
  Dataset data{1};
  for (int i = 0; i < 20; ++i) data.add(std::array{double(i)}, 2.0 * i);
  const auto result = cross_validate(data, linear_factory(), 5, 1);
  EXPECT_NEAR(result.rmse, 0.0, 1e-6);
  EXPECT_NEAR(result.mae, 0.0, 1e-6);
}

TEST(CrossValidation, RejectsDegenerateSplits) {
  Dataset data{1};
  data.add(std::array{1.0}, 1.0);
  data.add(std::array{2.0}, 2.0);
  EXPECT_THROW((void)cross_validate(data, linear_factory(), 1, 1),
               std::invalid_argument);
  EXPECT_THROW((void)cross_validate(data, linear_factory(), 3, 1),
               std::invalid_argument);
}

TEST(CrossValidation, DeterministicGivenSeed) {
  const Dataset data = surface_data(60, 3);
  const auto a = cross_validate(data, m5_factory(), 5, 42);
  const auto b = cross_validate(data, m5_factory(), 5, 42);
  EXPECT_DOUBLE_EQ(a.rmse, b.rmse);
}

TEST(CrossValidation, MaeNeverExceedsRmse) {
  const Dataset data = surface_data(80, 4);
  const auto result = cross_validate(data, m5_factory(), 4, 5);
  EXPECT_LE(result.mae, result.rmse + 1e-12);
}

TEST(SurrogateBakeoff, M5BeatsLinearOnPiecewiseSurface) {
  // The paper's rationale for model trees: piecewise-linear performance
  // surfaces defeat a single global linear model.
  const Dataset data = surface_data(200, 6);
  const auto linear = cross_validate(data, linear_factory(), 10, 7);
  const auto m5 = cross_validate(data, m5_factory(), 10, 7);
  EXPECT_LT(m5.rmse, 0.7 * linear.rmse);
}

TEST(SurrogateBakeoff, BothSurrogatesBeatThePriorMean) {
  // With 200 dense samples, kNN's local averaging can out-generalize M5 on
  // raw accuracy; what matters for SMBO is that both learn the surface far
  // better than predicting the global mean (and M5 additionally provides the
  // bagging-variance signal EI needs, which kNN only approximates).
  const Dataset data = surface_data(200, 8);
  const double prior_rmse = data.target_stddev();
  const auto m5 = cross_validate(data, m5_factory(), 10, 9);
  const auto knn = cross_validate(data, knn_factory(5), 10, 9);
  EXPECT_LT(m5.rmse, 0.5 * prior_rmse);
  EXPECT_LT(knn.rmse, 0.5 * prior_rmse);
}

TEST(CrossValidation, UnevenFoldsCoverEveryRow) {
  // 23 rows, 5 folds: folds of size 5,5,5,4,4 — every row held out once.
  Dataset data{1};
  for (int i = 0; i < 23; ++i) data.add(std::array{double(i)}, 3.0 * i + 1);
  const auto result = cross_validate(data, linear_factory(), 5, 10);
  EXPECT_NEAR(result.rmse, 0.0, 1e-6);
}

}  // namespace
}  // namespace autopn::ml
