// Chaos tests of the STM self-healing layer: injected conflicts via
// failpoints, bounded retry with starvation escalation (both commit
// strategies), deadline give-up, and the backoff schedule's bound.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "stm/exceptions.hpp"
#include "stm/stm.hpp"
#include "stm/vbox.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace autopn::stm {
namespace {

class ChaosStmTest : public ::testing::Test {
 protected:
  void TearDown() override { util::FailpointRegistry::instance().disarm_all(); }
};

TEST_F(ChaosStmTest, BackoffDelayIsCappedAndJittered) {
  util::Rng rng{42};
  const auto ceiling = kBackoffBase * (1u << kBackoffCapAttempt);
  for (unsigned attempt = 0; attempt < 40; ++attempt) {
    const auto delay = backoff_delay(attempt, rng);
    const auto attempt_ceiling =
        kBackoffBase * (1u << std::min(attempt, kBackoffCapAttempt));
    EXPECT_LT(delay, attempt_ceiling) << "attempt " << attempt;
    EXPECT_GE(delay, attempt_ceiling / 2) << "attempt " << attempt;
    EXPECT_LT(delay, ceiling);  // the global bound, even at attempt 40
  }
  // Jitter: repeated draws at one attempt must not all coincide.
  std::vector<std::chrono::microseconds> draws;
  for (int i = 0; i < 16; ++i) draws.push_back(backoff_delay(10, rng));
  bool varied = false;
  for (const auto d : draws) varied = varied || d != draws.front();
  EXPECT_TRUE(varied);
}

TEST_F(ChaosStmTest, EscalationCompletesUnderCertainInjectedConflict) {
  if (!util::FailpointRegistry::compiled_in()) GTEST_SKIP();
  for (const CommitStrategy strategy :
       {CommitStrategy::kGlobalLock, CommitStrategy::kLockFree}) {
    util::FailpointRegistry::instance().arm_from_string(
        "stm.commit.validate=error(p=1)");
    StmConfig config;
    config.commit_strategy = strategy;
    config.retry_budget = 4;
    Stm stm{config};
    VBox<int> box;
    stm.run_top([&](Tx& tx) { box.write(tx, 0); });  // init (also injected!)
    stm.run_top([&](Tx& tx) { box.write(tx, box.read(tx) + 1); });
    util::FailpointRegistry::instance().disarm_all();
    EXPECT_EQ(stm.read_only<int>([&](Tx& tx) { return box.read(tx); }), 1);
    const StmStatsSnapshot stats = stm.stats();
    // Every normal attempt was injected-aborted, so both transactions can
    // only have finished through escalation.
    EXPECT_EQ(stats.top_escalations, 2u);
    EXPECT_GE(stats.aborts_injected, 8u);  // 4 budgeted attempts each
    EXPECT_EQ(stats.top_commits, 3u);      // 2 escalated + 1 read-only
  }
}

TEST_F(ChaosStmTest, RetryBudgetZeroNeverEscalates) {
  if (!util::FailpointRegistry::compiled_in()) GTEST_SKIP();
  util::FailpointRegistry::instance().arm_from_string(
      "stm.commit.validate=error(p=1,n=6)");  // clears after 6 aborts
  StmConfig config;
  config.retry_budget = 0;  // retry forever, never escalate
  Stm stm{config};
  VBox<int> box;
  stm.run_top([&](Tx& tx) { box.write(tx, 7); });
  EXPECT_EQ(stm.read_only<int>([&](Tx& tx) { return box.read(tx); }), 7);
  const StmStatsSnapshot stats = stm.stats();
  EXPECT_EQ(stats.top_escalations, 0u);
  EXPECT_EQ(stats.aborts_injected, 6u);
}

TEST_F(ChaosStmTest, GiveUpPredicateThrowsDeadlineExceeded) {
  if (!util::FailpointRegistry::compiled_in()) GTEST_SKIP();
  util::FailpointRegistry::instance().arm_from_string(
      "stm.commit.validate=error(p=1)");
  StmConfig config;
  config.retry_budget = 0;  // would otherwise retry forever
  Stm stm{config};
  VBox<int> box;
  RunOptions options;
  options.give_up = [] { return true; };
  EXPECT_THROW(
      stm.run_top([&](Tx& tx) { box.write(tx, 1); }, options),
      DeadlineExceeded);
  EXPECT_EQ(stm.stats().top_commits, 0u);
}

TEST_F(ChaosStmTest, AmbientScopedDeadlinePropagatesWithoutOptions) {
  if (!util::FailpointRegistry::compiled_in()) GTEST_SKIP();
  util::FailpointRegistry::instance().arm_from_string(
      "stm.commit.validate=error(p=1)");
  StmConfig config;
  config.retry_budget = 0;
  Stm stm{config};
  VBox<int> box;
  {
    ScopedDeadline deadline{[] { return true; }};
    EXPECT_THROW(stm.run_top([&](Tx& tx) { box.write(tx, 1); }),
                 DeadlineExceeded);
  }
  // Scope gone: the (still armed, but now probabilistic-off) predicate no
  // longer applies; with the failpoint disarmed the run commits normally.
  util::FailpointRegistry::instance().disarm_all();
  stm.run_top([&](Tx& tx) { box.write(tx, 2); });
  EXPECT_EQ(stm.read_only<int>([&](Tx& tx) { return box.read(tx); }), 2);
}

TEST_F(ChaosStmTest, ProbabilisticInjectionEventuallyCommitsEveryTx) {
  if (!util::FailpointRegistry::compiled_in()) GTEST_SKIP();
  util::FailpointRegistry::instance().arm_from_string(
      "stm.commit.validate=error(p=0.5);stm.child.merge=error(p=0.2)");
  StmConfig config;
  config.pool_threads = 2;
  config.initial_top = 4;
  config.initial_children = 2;
  config.retry_budget = 16;
  Stm stm{config};
  VBox<long> box;
  stm.run_top([&](Tx& tx) { box.write(tx, 0); });

  constexpr int kThreads = 4;
  constexpr int kTxPerThread = 25;
  std::vector<std::jthread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kTxPerThread; ++i) {
        stm.run_top([&](Tx& tx) {
          tx.run_children({[&](Tx& child) {
            box.write(child, box.read(child) + 1);
          }});
        });
      }
    });
  }
  threads.clear();  // join
  util::FailpointRegistry::instance().disarm_all();
  // Snapshot stats before the verification read — read_only is itself a
  // top-level transaction and would bump top_commits.
  const StmStatsSnapshot stats = stm.stats();
  EXPECT_EQ(stats.top_commits, 1u + kThreads * kTxPerThread);
  EXPECT_GT(stats.aborts_injected, 0u);
  EXPECT_EQ(stm.read_only<long>([&](Tx& tx) { return box.read(tx); }),
            kThreads * kTxPerThread);
}

TEST_F(ChaosStmTest, StarvationVictimCompletesUnderRealContention) {
  // No failpoints needed: a genuinely starved read-modify-write against
  // faster writers must complete within its budget via escalation.
  StmConfig config;
  config.initial_top = 4;
  config.retry_budget = 8;
  Stm stm{config};
  VBox<long> hot;
  stm.run_top([&](Tx& tx) { hot.write(tx, 0); });

  std::atomic<bool> stop{false};
  std::vector<std::jthread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        stm.run_top([&](Tx& tx) { hot.write(tx, hot.read(tx) + 1); });
      }
    });
  }
  // The victim does slow transactions over the same hot box; without
  // escalation it could abort unboundedly against the tight writer loops.
  for (int i = 0; i < 5; ++i) {
    stm.run_top([&](Tx& tx) {
      const long value = hot.read(tx);
      std::this_thread::sleep_for(std::chrono::microseconds{500});
      hot.write(tx, value + 1000000);
    });
  }
  stop.store(true, std::memory_order_relaxed);
  writers.clear();  // join
  const long final_value =
      stm.read_only<long>([&](Tx& tx) { return hot.read(tx); });
  EXPECT_GE(final_value, 5000000L);  // all five victim increments landed
}

TEST_F(ChaosStmTest, EscalatedAttemptsIgnoreArmedFailpoints) {
  if (!util::FailpointRegistry::compiled_in()) GTEST_SKIP();
  // p=1 on both the validate and merge sites: if escalation did not mask
  // injection, this would loop forever instead of finishing.
  util::FailpointRegistry::instance().arm_from_string(
      "stm.commit.validate=error(p=1);stm.child.merge=error(p=1)");
  StmConfig config;
  config.retry_budget = 2;
  Stm stm{config};
  VBox<int> box;
  stm.run_top([&](Tx& tx) {
    tx.run_children({[&](Tx& child) { box.write(child, 11); }});
  });
  util::FailpointRegistry::instance().disarm_all();
  EXPECT_EQ(stm.read_only<int>([&](Tx& tx) { return box.read(tx); }), 11);
  EXPECT_GE(stm.stats().top_escalations, 1u);
}

}  // namespace
}  // namespace autopn::stm
