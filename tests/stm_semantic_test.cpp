// Semantic conflict detection: datatype-aware predicates and commit-time
// delta install (stm/predicate.hpp, the kSemantic container policy).
//
// The load-bearing claims pinned here:
//  * disjoint-key operations on one TMap bucket never conflict under
//    kSemantic (and do under kBoxGranularity — the contrast tests);
//  * commit-time delta install composes concurrent disjoint-key commits
//    instead of last-writer-wins bucket clobbering;
//  * a predicate aborts the transaction exactly when the guarded fact flips
//    (key version changed, observed-absent key appeared);
//  * predicates on facts determined by the transaction's own tree (tree-
//    local) are never validated against committed state;
//  * disjoint TQueue push/pop commit conflict-free under kSemantic — the
//    regression test for push's historical exact read of head.
//
// Interleavings are pinned with latches: the first attempt of transaction A
// parks mid-body while transaction B runs start-to-commit, then A resumes.
#include <gtest/gtest.h>

#include <atomic>
#include <latch>
#include <optional>
#include <thread>
#include <vector>

#include "stm/containers.hpp"
#include "stm/stm.hpp"

namespace autopn::stm {
namespace {

StmConfig cfg() {
  StmConfig c;
  c.pool_threads = 2;
  c.initial_top = 4;
  c.initial_children = 4;
  return c;
}

/// A single-bucket map: every key shares the one box, so any cross-key
/// conflict is a policy artifact, not a genuine collision.
TMap<int, int> one_bucket(ContainerPolicy policy) {
  return TMap<int, int>{1, "m", policy};
}

// Runs `first` up to its park point, then `second` start-to-finish, then
// releases `first` to commit. Only the first attempt of `first` parks;
// retries run straight through.
template <typename FirstBody, typename SecondBody>
void interleave(Stm& stm, FirstBody first, SecondBody second) {
  std::latch parked{1};
  std::latch resume{1};
  std::atomic<bool> first_attempt{true};
  std::thread a{[&] {
    stm.run_top([&](Tx& tx) {
      const bool park = first_attempt.exchange(false, std::memory_order_acq_rel);
      first(tx);
      if (park) {
        parked.count_down();
        resume.wait();
      }
    });
  }};
  parked.wait();
  stm.run_top([&](Tx& tx) { second(tx); });
  resume.count_down();
  a.join();
}

// ---- disjoint-key TMap operations ------------------------------------------

TEST(SemanticMapTest, DisjointKeyPutsSameBucketNeverConflict) {
  Stm stm{cfg()};
  auto map = one_bucket(ContainerPolicy::kSemantic);
  // Both transactions hold their blind upsert pending while the other runs.
  interleave(
      stm, [&](Tx& tx) { map.put(tx, 1, 100); },
      [&](Tx& tx) { map.put(tx, 2, 200); });
  const auto stats = stm.stats();
  EXPECT_EQ(stats.top_aborts, 0u);
  // Delta install composed both commits: neither clobbered the other.
  stm.run_top([&](Tx& tx) {
    EXPECT_EQ(map.get(tx, 1), std::optional<int>{100});
    EXPECT_EQ(map.get(tx, 2), std::optional<int>{200});
  });
}

TEST(SemanticMapTest, GetSurvivesDisjointKeyPutInSameBucket) {
  Stm stm{cfg()};
  auto map = one_bucket(ContainerPolicy::kSemantic);
  stm.run_top([&](Tx& tx) { map.put(tx, 1, 11); });
  // A reads key 1 (predicate: present at its entry version) and writes key
  // 3; B upserts key 2 — same bucket, different key — in A's window.
  interleave(
      stm,
      [&](Tx& tx) {
        EXPECT_EQ(map.get(tx, 1), std::optional<int>{11});
        map.put(tx, 3, 33);
      },
      [&](Tx& tx) { map.put(tx, 2, 22); });
  const auto stats = stm.stats();
  EXPECT_EQ(stats.top_aborts, 0u);
  EXPECT_EQ(stats.aborts_predicate, 0u);
}

TEST(SemanticMapTest, BoxPolicyAbortsOnDisjointKeySameBucket) {
  Stm stm{cfg()};
  auto map = one_bucket(ContainerPolicy::kBoxGranularity);
  stm.run_top([&](Tx& tx) { map.put(tx, 1, 11); });
  // Same interleaving as above under the conservative policy: A's exact
  // bucket read is invalidated by B's bucket overwrite. This is the false
  // abort the semantic layer removes.
  interleave(
      stm,
      [&](Tx& tx) {
        EXPECT_EQ(map.get(tx, 1), std::optional<int>{11});
        map.put(tx, 3, 33);
      },
      [&](Tx& tx) { map.put(tx, 2, 22); });
  const auto stats = stm.stats();
  EXPECT_GE(stats.top_aborts, 1u);
  // Both transactions still commit correctly after retry.
  stm.run_top([&](Tx& tx) {
    EXPECT_EQ(map.get(tx, 2), std::optional<int>{22});
    EXPECT_EQ(map.get(tx, 3), std::optional<int>{33});
  });
}

// ---- predicate aborts when the guarded fact flips --------------------------

TEST(SemanticMapTest, PredicateAbortsWhenReadKeyIsOverwritten) {
  Stm stm{cfg()};
  auto map = one_bucket(ContainerPolicy::kSemantic);
  stm.run_top([&](Tx& tx) { map.put(tx, 1, 11); });
  std::vector<int> observed;
  interleave(
      stm,
      [&](Tx& tx) {
        observed.push_back(map.get(tx, 1).value());
        map.put(tx, 3, 33);
      },
      [&](Tx& tx) { map.put(tx, 1, 99); });
  const auto stats = stm.stats();
  EXPECT_EQ(stats.aborts_predicate, 1u);
  // First attempt saw the old value, the committed retry the new one.
  ASSERT_EQ(observed.size(), 2u);
  EXPECT_EQ(observed[0], 11);
  EXPECT_EQ(observed[1], 99);
}

TEST(SemanticMapTest, AbsencePredicateAbortsWhenKeyAppears) {
  Stm stm{cfg()};
  auto map = one_bucket(ContainerPolicy::kSemantic);
  std::vector<bool> observed;
  interleave(
      stm,
      [&](Tx& tx) {
        observed.push_back(map.contains(tx, 5));
        map.put(tx, 3, 33);
      },
      [&](Tx& tx) { map.put(tx, 5, 55); });
  const auto stats = stm.stats();
  EXPECT_EQ(stats.aborts_predicate, 1u);
  ASSERT_EQ(observed.size(), 2u);
  EXPECT_FALSE(observed[0]);
  EXPECT_TRUE(observed[1]);
}

TEST(SemanticMapTest, PredicateAbortsWhenReadKeyIsErased) {
  Stm stm{cfg()};
  auto map = one_bucket(ContainerPolicy::kSemantic);
  stm.run_top([&](Tx& tx) { map.put(tx, 1, 11); });
  std::vector<std::optional<int>> observed;
  interleave(
      stm,
      [&](Tx& tx) {
        observed.push_back(map.get(tx, 1));
        map.put(tx, 3, 33);
      },
      [&](Tx& tx) { EXPECT_TRUE(map.erase(tx, 1)); });
  EXPECT_EQ(stm.stats().aborts_predicate, 1u);
  ASSERT_EQ(observed.size(), 2u);
  EXPECT_EQ(observed[0], std::optional<int>{11});
  EXPECT_EQ(observed[1], std::nullopt);
}

// ---- self- and tree-determined facts need no global validation -------------

TEST(SemanticMapTest, OwnPendingOpDecidesWithoutPredicate) {
  Stm stm{cfg()};
  auto map = one_bucket(ContainerPolicy::kSemantic);
  stm.run_top([&](Tx& tx) {
    map.put(tx, 1, 10);
    EXPECT_EQ(map.get(tx, 1), std::optional<int>{10});  // own op decides
    EXPECT_TRUE(map.erase(tx, 1));
    EXPECT_EQ(map.get(tx, 1), std::nullopt);
    EXPECT_EQ(tx.predicate_count(), 0u);
  });
}

TEST(SemanticMapTest, TreeLocalPredicateIsNotValidatedAgainstCommittedState) {
  Stm stm{cfg()};
  auto map = one_bucket(ContainerPolicy::kSemantic);
  stm.run_top([&](Tx& tx) { map.put(tx, 1, 11); });
  // The parent tentatively overwrites key 1; the child's read resolves
  // through that tentative op, so its predicate records the *tentative*
  // entry version. It must not be checked against committed state (where
  // the version differs) — the deciding op installs with this very commit.
  stm.run_top([&](Tx& tx) {
    map.put(tx, 1, 22);
    tx.run_children({[&](Tx& child) {
      EXPECT_EQ(map.get(child, 1), std::optional<int>{22});
      map.put(child, 2, 2);
    }});
  });
  const auto stats = stm.stats();
  EXPECT_EQ(stats.aborts_predicate, 0u);
  EXPECT_EQ(stats.top_aborts, 0u);
  stm.run_top([&](Tx& tx) { EXPECT_EQ(map.get(tx, 1), std::optional<int>{22}); });
}

TEST(SemanticMapTest, TreeLocalErasePredicateIsNotValidatedAgainstCommittedState) {
  Stm stm{cfg()};
  auto map = one_bucket(ContainerPolicy::kSemantic);
  stm.run_top([&](Tx& tx) { map.put(tx, 1, 11); });
  // The parent tentatively erases key 1; the child observes it absent. The
  // key still exists in committed state — a naive global check of the
  // absence predicate would fail on every attempt and livelock.
  stm.run_top([&](Tx& tx) {
    EXPECT_TRUE(map.erase(tx, 1));
    tx.run_children({[&](Tx& child) {
      EXPECT_EQ(map.get(child, 1), std::nullopt);
      map.put(child, 2, 2);
    }});
  });
  const auto stats = stm.stats();
  EXPECT_EQ(stats.aborts_predicate, 0u);
  EXPECT_EQ(stats.top_aborts, 0u);
  stm.run_top([&](Tx& tx) { EXPECT_FALSE(map.contains(tx, 1)); });
}

// ---- nested siblings --------------------------------------------------------

TEST(SemanticMapTest, SiblingDisjointKeyOpsSameBucketMergeCleanly) {
  Stm stm{cfg()};
  auto map = one_bucket(ContainerPolicy::kSemantic);
  stm.run_top([&](Tx& tx) { map.put(tx, 0, 0); });
  stm.run_top([&](Tx& tx) {
    std::vector<std::function<void(Tx&)>> bodies;
    for (int k = 1; k <= 4; ++k) {
      bodies.push_back([&, k](Tx& child) {
        EXPECT_TRUE(map.contains(child, 0));  // predicate on shared key 0
        map.put(child, k, k * 10);            // blind upsert, disjoint keys
      });
    }
    tx.run_children(std::move(bodies));
  });
  const auto stats = stm.stats();
  EXPECT_EQ(stats.aborts_sibling, 0u);
  EXPECT_EQ(stats.aborts_predicate, 0u);
  stm.run_top([&](Tx& tx) {
    EXPECT_EQ(map.size(tx), 5u);
    for (int k = 1; k <= 4; ++k) {
      EXPECT_EQ(map.get(tx, k), std::optional<int>{k * 10});
    }
  });
}

TEST(SemanticMapTest, SiblingConflictOnSameKeyStillDetected) {
  Stm stm{cfg()};
  auto map = one_bucket(ContainerPolicy::kSemantic);
  stm.run_top([&](Tx& tx) { map.put(tx, 1, 0); });
  // Two children read-modify-write the SAME key: a genuine conflict the
  // semantic layer must still serialize (one child retries; no lost update).
  stm.run_top([&](Tx& tx) {
    std::vector<std::function<void(Tx&)>> bodies;
    for (int c = 0; c < 2; ++c) {
      bodies.push_back([&](Tx& child) {
        map.put(child, 1, map.get(child, 1).value() + 1);
      });
    }
    tx.run_children(std::move(bodies));
  });
  stm.run_top([&](Tx& tx) { EXPECT_EQ(map.get(tx, 1), std::optional<int>{2}); });
}

// ---- TQueue: disjoint push/pop regression (the historical false conflict) --

TEST(SemanticQueueTest, DisjointPushAndPopNeverConflict) {
  Stm stm{cfg()};
  TQueue<int> queue{8, "q", ContainerPolicy::kSemantic};
  stm.run_top([&](Tx& tx) {
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.push(tx, i));
  });
  // Mid-full queue: a pop (advances head) overlaps a push (advances tail).
  // Historically push exactly read head for its fullness check, so every
  // pop aborted every concurrent push; the monotone cursor predicate keeps
  // both commits valid.
  interleave(
      stm, [&](Tx& tx) { EXPECT_EQ(queue.pop(tx), std::optional<int>{0}); },
      [&](Tx& tx) { EXPECT_TRUE(queue.push(tx, 100)); });
  const auto stats = stm.stats();
  EXPECT_EQ(stats.top_aborts, 0u);
  EXPECT_EQ(stats.aborts_predicate, 0u);
  EXPECT_EQ(queue.peek_size(), 4u);
  // FIFO order intact.
  stm.run_top([&](Tx& tx) {
    EXPECT_EQ(queue.pop(tx), std::optional<int>{1});
    EXPECT_EQ(queue.pop(tx), std::optional<int>{2});
    EXPECT_EQ(queue.pop(tx), std::optional<int>{3});
    EXPECT_EQ(queue.pop(tx), std::optional<int>{100});
  });
}

TEST(SemanticQueueTest, BoxPolicyAbortsDisjointPushPop) {
  Stm stm{cfg()};
  TQueue<int> queue{8, "q", ContainerPolicy::kBoxGranularity};
  stm.run_top([&](Tx& tx) {
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.push(tx, i));
  });
  // The same interleaving under the conservative policy: the pop's exact
  // read of tail (emptiness check) is invalidated by the push's commit.
  interleave(
      stm, [&](Tx& tx) { (void)queue.pop(tx); },
      [&](Tx& tx) { EXPECT_TRUE(queue.push(tx, 100)); });
  EXPECT_GE(stm.stats().top_aborts, 1u);
  EXPECT_EQ(queue.peek_size(), 4u);  // still correct after retry
}

TEST(SemanticQueueTest, EmptinessPredicateAbortsWhenElementArrives) {
  Stm stm{cfg()};
  TQueue<int> queue{4, "q", ContainerPolicy::kSemantic};
  VBox<int> side{0};
  std::vector<std::optional<int>> observed;
  // A observes the queue empty (kAtMost predicate on tail) and writes a
  // side box; B pushes in A's window: the observed-empty verdict is stale
  // and must abort A.
  interleave(
      stm,
      [&](Tx& tx) {
        observed.push_back(queue.pop(tx));
        side.write(tx, 1);
      },
      [&](Tx& tx) { EXPECT_TRUE(queue.push(tx, 7)); });
  EXPECT_EQ(stm.stats().aborts_predicate, 1u);
  ASSERT_EQ(observed.size(), 2u);
  EXPECT_EQ(observed[0], std::nullopt);
  EXPECT_EQ(observed[1], std::optional<int>{7});
}

TEST(SemanticQueueTest, FullnessVerdictAbortsWhenRoomAppears) {
  Stm stm{cfg()};
  TQueue<int> queue{2, "q", ContainerPolicy::kSemantic};
  stm.run_top([&](Tx& tx) {
    EXPECT_TRUE(queue.push(tx, 0));
    EXPECT_TRUE(queue.push(tx, 1));
  });
  VBox<int> side{0};
  std::vector<bool> pushed;
  // A observes the queue full (kAtMost predicate on head) and gives up; B
  // pops in A's window, making room A should have taken.
  interleave(
      stm,
      [&](Tx& tx) {
        pushed.push_back(queue.push(tx, 9));
        side.write(tx, 1);
      },
      [&](Tx& tx) { EXPECT_EQ(queue.pop(tx), std::optional<int>{0}); });
  EXPECT_EQ(stm.stats().aborts_predicate, 1u);
  ASSERT_EQ(pushed.size(), 2u);
  EXPECT_FALSE(pushed[0]);
  EXPECT_TRUE(pushed[1]);
  EXPECT_EQ(queue.peek_size(), 2u);
}

// ---- per-key profiler attribution ------------------------------------------

TEST(SemanticMapTest, PredicateConflictIsAttributedPerKey) {
  Stm stm{cfg()};
  stm.set_contention_profiling(true);
  auto map = one_bucket(ContainerPolicy::kSemantic);
  stm.run_top([&](Tx& tx) { map.put(tx, 7, 0); });
  interleave(
      stm,
      [&](Tx& tx) {
        (void)map.get(tx, 7);
        map.put(tx, 3, 1);
      },
      [&](Tx& tx) { map.put(tx, 7, 1); });
  ASSERT_EQ(stm.stats().aborts_predicate, 1u);
  const auto hotspots = stm.contention_hotspots(8);
  ASSERT_FALSE(hotspots.empty());
  EXPECT_EQ(hotspots[0].label, "m[0].key=7");
}

}  // namespace
}  // namespace autopn::stm
