// Elastic-membership end-to-end tests: runtime admit through probation,
// administrative retire under open load (drop-free), health-driven eviction
// of a killed backend with traffic converging back to zero shed, the
// dead-backend vs transient shed split on the wire, the v1.2 Membership
// control frames, and the router.admit / router.retire failpoints. Every
// test closes by asserting the router ledger stayed exact across the churn.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <optional>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "router/health.hpp"
#include "router/ring.hpp"
#include "router/router.hpp"
#include "serve/engine.hpp"
#include "stm/stm.hpp"
#include "util/clock.hpp"
#include "util/failpoint.hpp"

namespace autopn::router {
namespace {

using namespace std::chrono_literals;

stm::StmConfig small_stm() {
  stm::StmConfig cfg;
  cfg.max_cores = 4;
  cfg.pool_threads = 2;
  cfg.initial_top = 2;
  cfg.initial_children = 1;
  return cfg;
}

/// One real backend shard: engine + NetServer on a kernel-assigned port.
struct Shard {
  explicit Shard(net::NetServer::HandlerTable handlers = {})
      : stm(small_stm()),
        engine(stm, [](util::Rng&) {}, clock, {}),
        server(engine, std::move(handlers)) {}

  util::WallClock clock;
  stm::Stm stm;
  serve::ServeEngine engine;
  net::NetServer server;

  [[nodiscard]] ShardAddress address(std::uint32_t id) const {
    return ShardAddress{id, "127.0.0.1", server.port()};
  }
};

/// Aggressive cadences so probation and eviction land within test budgets.
/// The poll period must exceed the link's ~100ms receive window: a shorter
/// cadence sees the stats reply land every OTHER tick, which reads as
/// alternating misses and would reset probation's consecutive-pass count.
RouterConfig fast_config() {
  RouterConfig cfg;
  cfg.backoff.attempt_timeout_seconds = 0.25;
  cfg.backoff.initial_backoff_seconds = 0.02;
  cfg.backoff.max_backoff_seconds = 0.1;
  cfg.stats_poll_seconds = 0.15;
  cfg.rebalance_enabled = false;  // tests drive membership explicitly
  cfg.migration_timeout_seconds = 0.5;
  cfg.redial_budget = 3;
  cfg.dead_probe_seconds = 0.1;
  return cfg;
}

/// First tenant id the ring places on `shard` (the router's own hashing).
std::uint16_t tenant_on(std::uint32_t shard, std::uint32_t shard_count) {
  HashRing ring;
  for (std::uint32_t s = 0; s < shard_count; ++s) ring.add_shard(s);
  for (std::uint16_t t = 0;; ++t) {
    if (ring.owner_of_tenant(t) == shard) return t;
  }
}

void expect_router_ledger(const RouterReport& r) {
  EXPECT_EQ(r.dispatched, r.forwarded + r.shed_local);
  EXPECT_EQ(r.forwarded, r.returned);
}

std::optional<net::MemberInfo> find_member(const net::MembershipFrame& frame,
                                           std::uint32_t shard_id) {
  for (const net::MemberInfo& m : frame.members) {
    if (m.shard_id == shard_id) return m;
  }
  return std::nullopt;
}

/// Polls membership_status() until `pred` holds or ~5s pass; dumps the
/// member table on timeout so a failure is diagnosable from the log.
template <typename Pred>
bool wait_for_membership(Router& router, Pred pred) {
  for (int i = 0; i < 250; ++i) {
    if (pred(router.membership_status())) return true;
    std::this_thread::sleep_for(20ms);
  }
  const net::MembershipFrame frame = router.membership_status();
  for (const net::MemberInfo& m : frame.members) {
    std::cerr << "member " << m.shard_id << " health="
              << to_string(static_cast<HealthState>(m.health))
              << " in_ring=" << m.in_ring
              << " redials=" << m.redial_attempts << " last_error=\""
              << m.last_error << "\"\n";
  }
  return false;
}

TEST(RouterMembership, RuntimeAdmitJoinsOnlyAfterProbation) {
  Shard shard0;
  Router router({shard0.address(0)}, fast_config());

  Shard extra;
  const net::MembershipFrame reply = router.admit_shard(extra.address(1));
  ASSERT_TRUE(reply.ok) << reply.message;
  // Admitted means dialing, not placed: the member exists outside the ring.
  const auto fresh = find_member(reply, 1);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_FALSE(fresh->in_ring);

  // Probation passes on consecutive clean polls; the join is logged.
  ASSERT_TRUE(wait_for_membership(router, [](const net::MembershipFrame& f) {
    const auto m = find_member(f, 1);
    return m.has_value() && m->in_ring &&
           m->health == static_cast<std::uint8_t>(HealthState::kHealthy);
  }));
  const net::MembershipFrame status = router.membership_status();
  ASSERT_FALSE(status.log.empty());
  EXPECT_EQ(status.log.back().event,
            static_cast<std::uint8_t>(MembershipEvent::kJoin));
  EXPECT_EQ(status.log.back().shard_id, 1u);

  // The joined shard owns real arcs: its pinned tenant's traffic lands on
  // it through the router.
  const std::uint16_t tenant = tenant_on(1, 2);
  auto client = net::Client::connect("127.0.0.1", router.port());
  for (int i = 0; i < 4; ++i) {
    const auto response = client.call(/*handler_id=*/0, tenant);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, net::Status::kOk);
  }
  EXPECT_EQ(extra.server.report().requests_decoded, 4u);

  client.close();
  router.shutdown();
  const RouterReport report = router.report();
  EXPECT_EQ(report.admits, 1u);
  EXPECT_EQ(report.readmits, 1u);  // the probation-earned join
  expect_router_ledger(report);
}

TEST(RouterMembership, RetireUnderLoadDropsNothing) {
  net::NetServer::HandlerTable slow = {
      [](util::Rng&) { std::this_thread::sleep_for(2ms); }};
  Shard shard0(slow);
  Shard shard1(slow);
  Router router({shard0.address(0), shard1.address(1)}, fast_config());
  const std::uint16_t tenant = tenant_on(0, 2);
  ASSERT_EQ(router.shard_of(tenant), 0u);

  constexpr int kLoaders = 2;
  constexpr int kCallsPerLoader = 100;
  std::atomic<int> answered{0};
  std::atomic<int> ok{0};
  std::vector<std::thread> loaders;
  loaders.reserve(kLoaders);
  for (int l = 0; l < kLoaders; ++l) {
    loaders.emplace_back([&] {
      auto client = net::Client::connect("127.0.0.1", router.port());
      for (int i = 0; i < kCallsPerLoader; ++i) {
        const auto response =
            client.call(/*handler_id=*/0, tenant, /*deadline_us=*/0,
                        /*timeout_seconds=*/5.0);
        if (response.has_value()) {
          answered.fetch_add(1, std::memory_order_relaxed);
          if (response->status == net::Status::kOk) {
            ok.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  std::this_thread::sleep_for(50ms);  // mid-stream, requests in flight
  const net::MembershipFrame reply = router.retire_shard(0);
  ASSERT_TRUE(reply.ok) << reply.message;
  for (std::thread& t : loaders) t.join();

  // Drop-free: every call answered, none shed — the retire migrated the
  // tenant off through the same drain-then-cut path a rebalance uses.
  EXPECT_EQ(answered.load(), kLoaders * kCallsPerLoader);
  EXPECT_EQ(ok.load(), kLoaders * kCallsPerLoader);
  EXPECT_EQ(router.shard_of(tenant), 1u);

  // Once drained, the member itself is finalized and forgotten.
  EXPECT_TRUE(wait_for_membership(router, [](const net::MembershipFrame& f) {
    return !find_member(f, 0).has_value();
  }));

  router.shutdown();
  const RouterReport report = router.report();
  EXPECT_EQ(report.retires, 1u);
  EXPECT_EQ(report.shed_local, 0u);
  expect_router_ledger(report);
}

// The ISSUE's acceptance scenario in miniature: kill 1 of 3 shards under
// traffic; the health machine evicts it (redial budget -> dead) and its
// tenants re-place onto survivors — after which every call succeeds again
// with no router restart.
TEST(RouterMembership, KilledShardIsEvictedAndTrafficConverges) {
  Shard shard0;
  Shard shard1;
  Shard shard2;
  Router router({shard0.address(0), shard1.address(1), shard2.address(2)},
                fast_config());
  const std::uint16_t tenants[] = {tenant_on(0, 3), tenant_on(1, 3),
                                   tenant_on(2, 3)};
  auto client = net::Client::connect("127.0.0.1", router.port());
  for (const std::uint16_t tenant : tenants) {
    const auto warm = client.call(/*handler_id=*/0, tenant);
    ASSERT_TRUE(warm.has_value());
    EXPECT_EQ(warm->status, net::Status::kOk);
  }

  shard1.server.shutdown();  // hard kill, no goodbye

  // Sheds are expected while the redial budget burns; keep offering.
  ASSERT_TRUE(wait_for_membership(router, [](const net::MembershipFrame& f) {
    const auto m = find_member(f, 1);
    return m.has_value() && !m->in_ring &&
           m->health == static_cast<std::uint8_t>(HealthState::kDead);
  }));
  EXPECT_NE(router.shard_of(tenants[1]), 1u);

  // Convergence: with the dead shard out of the ring, every tenant —
  // including the evictee's — answers kOk. Zero shed, no restart.
  for (int round = 0; round < 10; ++round) {
    for (const std::uint16_t tenant : tenants) {
      const auto response =
          client.call(/*handler_id=*/0, tenant, /*deadline_us=*/0,
                      /*timeout_seconds=*/5.0);
      ASSERT_TRUE(response.has_value());
      EXPECT_EQ(response->status, net::Status::kOk)
          << "tenant " << tenant << " round " << round;
    }
  }

  const net::MembershipFrame status = router.membership_status();
  bool saw_evict = false;
  for (const net::MembershipLogEntry& e : status.log) {
    saw_evict |= e.event == static_cast<std::uint8_t>(MembershipEvent::kEvict) &&
                 e.shard_id == 1;
  }
  EXPECT_TRUE(saw_evict);

  client.close();
  router.shutdown();
  const RouterReport report = router.report();
  EXPECT_GE(report.evictions, 1u);
  expect_router_ledger(report);
}

TEST(RouterMembership, DeadBackendShedDetailReachesTheClient) {
  Shard shard0;
  Router router({shard0.address(0)}, fast_config());
  auto client = net::Client::connect("127.0.0.1", router.port());
  ASSERT_GE(client.wire_minor(), 2u);
  const auto warm = client.call(/*handler_id=*/0, /*tenant_id=*/3);
  ASSERT_TRUE(warm.has_value());
  ASSERT_EQ(warm->status, net::Status::kOk);

  shard0.server.shutdown();
  // Early sheds are transient (in-flight flush, forward failure); once the
  // only shard is evicted the placement itself is dead — the router must
  // say so, so netload can split shed@rtr into dead vs blip.
  bool saw_dead_backend = false;
  for (int i = 0; i < 250 && !saw_dead_backend; ++i) {
    const auto response =
        client.call(/*handler_id=*/0, /*tenant_id=*/3, /*deadline_us=*/0,
                    /*timeout_seconds=*/2.0);
    ASSERT_TRUE(response.has_value());
    if (response->status == net::Status::kShed) {
      EXPECT_EQ(response->shed_origin, net::ShedOrigin::kRouter);
      saw_dead_backend =
          response->shed_detail == net::ShedDetail::kDeadBackend;
    }
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_TRUE(saw_dead_backend);

  client.close();
  router.shutdown();
  expect_router_ledger(router.report());
}

TEST(RouterMembership, WireMembershipFramesDriveAddRemoveStatus) {
  Shard shard0;
  Router router({shard0.address(0)}, fast_config());
  auto client = net::Client::connect("127.0.0.1", router.port());
  ASSERT_GE(client.wire_minor(), 2u);

  // Status: one bootstrap member, admitted+joined in the log.
  net::MembershipRequest status_req;
  status_req.op = net::MembershipOp::kStatus;
  ASSERT_TRUE(client.send_membership(status_req));
  auto status = client.poll_membership(/*timeout_seconds=*/2.0);
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->ok);
  ASSERT_EQ(status->members.size(), 1u);
  EXPECT_TRUE(status->members[0].in_ring);
  ASSERT_EQ(status->log.size(), 2u);
  EXPECT_EQ(status->log[0].event,
            static_cast<std::uint8_t>(MembershipEvent::kAdmit));
  EXPECT_EQ(status->log[1].event,
            static_cast<std::uint8_t>(MembershipEvent::kJoin));

  // Add over the wire; the reply reflects the probationary member.
  Shard extra;
  net::MembershipRequest add;
  add.op = net::MembershipOp::kAdd;
  add.shard_id = 1;
  add.host = "127.0.0.1";
  add.port = extra.server.port();
  ASSERT_TRUE(client.send_membership(add));
  const auto added = client.poll_membership(/*timeout_seconds=*/2.0);
  ASSERT_TRUE(added.has_value());
  EXPECT_TRUE(added->ok) << added->message;
  const auto fresh = find_member(*added, 1);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_FALSE(fresh->in_ring);

  ASSERT_TRUE(wait_for_membership(router, [](const net::MembershipFrame& f) {
    const auto m = find_member(f, 1);
    return m.has_value() && m->in_ring;
  }));

  // Remove over the wire; the member drains out and disappears.
  net::MembershipRequest remove;
  remove.op = net::MembershipOp::kRemove;
  remove.shard_id = 1;
  ASSERT_TRUE(client.send_membership(remove));
  const auto removed = client.poll_membership(/*timeout_seconds=*/2.0);
  ASSERT_TRUE(removed.has_value());
  EXPECT_TRUE(removed->ok) << removed->message;
  EXPECT_TRUE(wait_for_membership(router, [](const net::MembershipFrame& f) {
    return !find_member(f, 1).has_value();
  }));
  const net::MembershipFrame final_status = router.membership_status();
  ASSERT_FALSE(final_status.log.empty());
  EXPECT_EQ(final_status.log.back().event,
            static_cast<std::uint8_t>(MembershipEvent::kRetire));

  client.close();
  router.shutdown();
  expect_router_ledger(router.report());
}

TEST(RouterMembership, NonRouterServerRejectsMembershipFrames) {
  Shard shard0;  // a plain serving shard, not a router
  auto client = net::Client::connect("127.0.0.1", shard0.server.port());
  ASSERT_GE(client.wire_minor(), 2u);
  net::MembershipRequest req;
  req.op = net::MembershipOp::kStatus;
  ASSERT_TRUE(client.send_membership(req));
  const auto reply = client.poll_membership(/*timeout_seconds=*/2.0);
  ASSERT_TRUE(reply.has_value());
  EXPECT_FALSE(reply->ok);
  client.close();
}

TEST(RouterMembership, InvalidAndFailpointedAdmitsAreRejected) {
  Shard shard0;
  Router router({shard0.address(0)}, fast_config());

  // Duplicate id and a hostless admit are administrative errors.
  EXPECT_FALSE(router.admit_shard(shard0.address(0)).ok);
  EXPECT_FALSE(router.admit_shard(ShardAddress{5, "", 0}).ok);
  // Retiring an unknown shard likewise.
  EXPECT_FALSE(router.retire_shard(42).ok);

  if (util::FailpointRegistry::compiled_in()) {
    Shard extra;
    util::FailpointRegistry::instance().arm_from_string(
        "router.admit=error(n=1)");
    const auto vetoed = router.admit_shard(extra.address(1));
    EXPECT_FALSE(vetoed.ok);
    // The veto left no half-admitted member behind; a retry succeeds.
    const auto retried = router.admit_shard(extra.address(1));
    EXPECT_TRUE(retried.ok) << retried.message;

    util::FailpointRegistry::instance().arm_from_string(
        "router.retire=error(n=1)");
    EXPECT_FALSE(router.retire_shard(1).ok);
    EXPECT_TRUE(router.retire_shard(1).ok);
    util::FailpointRegistry::instance().disarm_all();
  }

  router.shutdown();
  expect_router_ledger(router.report());
}

}  // namespace
}  // namespace autopn::router
