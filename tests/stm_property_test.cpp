// Property-style randomized tests of the PN-STM: for random interleavings of
// random transaction programs, the committed history must be equivalent to
// some sequential execution (checked via conserved quantities and
// monotonicity witnesses), across a parameter sweep of (threads, t, c, pool).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "stm/containers.hpp"
#include "stm/stm.hpp"
#include "util/rng.hpp"

namespace autopn::stm {
namespace {

struct SweepParam {
  int app_threads;
  std::size_t top;
  std::size_t children;
  std::size_t pool;
};

class StmSweep : public ::testing::TestWithParam<SweepParam> {};

// Random transfers between accounts preserve the total balance. Transfers
// are executed by parallel children (each child moves money along one edge
// of a random path), so sibling merges and partial aborts are exercised.
TEST_P(StmSweep, RandomTransfersConserveTotal) {
  const auto [app_threads, top, children, pool] = GetParam();
  StmConfig cfg;
  cfg.initial_top = top;
  cfg.initial_children = children;
  cfg.pool_threads = pool;
  Stm stm{cfg};

  constexpr std::size_t kAccounts = 24;
  constexpr long long kInitial = 100;
  TArray<long long> accounts{kAccounts, kInitial};

  std::vector<std::jthread> threads;
  for (int thread_id = 0; thread_id < app_threads; ++thread_id) {
    threads.emplace_back([&, thread_id] {
      util::Rng rng{static_cast<std::uint64_t>(1000 + thread_id)};
      for (int i = 0; i < 25; ++i) {
        const std::uint64_t tx_seed = rng();
        stm.run_top([&](Tx& tx) {
          util::Rng tx_rng{tx_seed};
          const std::size_t hops = 1 + tx_rng.uniform_index(4);
          std::vector<std::function<void(Tx&)>> kids;
          for (std::size_t h = 0; h < hops; ++h) {
            const std::size_t from = tx_rng.uniform_index(kAccounts);
            const std::size_t to = tx_rng.uniform_index(kAccounts);
            const long long amount = 1 + static_cast<long long>(tx_rng.uniform_index(5));
            kids.emplace_back([&accounts, from, to, amount](Tx& child) {
              accounts.write(child, from, accounts.read(child, from) - amount);
              accounts.write(child, to, accounts.read(child, to) + amount);
            });
          }
          tx.run_children(std::move(kids));
        });
      }
    });
  }
  threads.clear();

  long long total = 0;
  for (std::size_t i = 0; i < kAccounts; ++i) total += accounts.peek(i);
  EXPECT_EQ(total, static_cast<long long>(kAccounts) * kInitial);
}

// A strictly monotone sequence number: every committed transaction writes
// seq+1; under serializability the final value equals the commit count.
TEST_P(StmSweep, SequenceNumberMatchesCommitCount) {
  const auto [app_threads, top, children, pool] = GetParam();
  StmConfig cfg;
  cfg.initial_top = top;
  cfg.initial_children = children;
  cfg.pool_threads = pool;
  Stm stm{cfg};

  VBox<long long> sequence{0LL};
  std::vector<std::jthread> threads;
  for (int thread_id = 0; thread_id < app_threads; ++thread_id) {
    threads.emplace_back([&] {
      for (int i = 0; i < 30; ++i) {
        stm.run_top([&](Tx& tx) {
          // Bounce the increment through a child to exercise merge paths.
          tx.run_children(
              {[&](Tx& child) { sequence.write(child, sequence.read(child) + 1); }});
        });
      }
    });
  }
  threads.clear();
  EXPECT_EQ(sequence.peek(),
            static_cast<long long>(stm.stats().top_commits));
  EXPECT_EQ(sequence.peek(), static_cast<long long>(app_threads) * 30);
}

// Readers sampling two coupled boxes never observe a torn invariant while
// writers update them through children.
TEST_P(StmSweep, CoupledInvariantNeverTorn) {
  const auto [app_threads, top, children, pool] = GetParam();
  StmConfig cfg;
  cfg.initial_top = top;
  cfg.initial_children = children;
  cfg.pool_threads = pool;
  Stm stm{cfg};

  VBox<long long> positive{500LL};
  VBox<long long> negative{-500LL};
  std::atomic<int> violations{0};
  std::atomic<bool> stop{false};

  std::vector<std::jthread> threads;
  for (int w = 0; w < std::max(1, app_threads - 1); ++w) {
    threads.emplace_back([&, w] {
      util::Rng rng{static_cast<std::uint64_t>(2000 + w)};
      for (int i = 0; i < 40; ++i) {
        const long long delta = 1 + static_cast<long long>(rng.uniform_index(9));
        stm.run_top([&](Tx& tx) {
          tx.run_children({[&](Tx& child) {
            positive.write(child, positive.read(child) + delta);
            negative.write(child, negative.read(child) - delta);
          }});
        });
      }
    });
  }
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      stm.run_top([&](Tx& tx) {
        if (positive.read(tx) + negative.read(tx) != 0) violations.fetch_add(1);
      });
    }
  });
  for (std::size_t i = 0; i + 1 < threads.size(); ++i) threads[i].join();
  stop.store(true);
  threads.clear();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(positive.peek() + negative.peek(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    TcPoolGrid, StmSweep,
    ::testing::Values(SweepParam{1, 1, 1, 1}, SweepParam{2, 2, 2, 1},
                      SweepParam{3, 2, 4, 2}, SweepParam{4, 4, 1, 2},
                      SweepParam{4, 4, 4, 4}, SweepParam{2, 1, 8, 2}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      const auto& p = info.param;
      return "app" + std::to_string(p.app_threads) + "_t" + std::to_string(p.top) +
             "_c" + std::to_string(p.children) + "_pool" + std::to_string(p.pool);
    });

// Chain-pruning property: after quiescence, every box's version chain has
// bounded length no matter how much history was written.
TEST(StmPruning, ChainsBoundedAfterChurn) {
  StmConfig cfg;
  cfg.initial_top = 4;
  cfg.pool_threads = 2;
  Stm stm{cfg};
  TArray<int> arr{8, 0};
  std::vector<std::jthread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < 100; ++i) {
        stm.run_top([&](Tx& tx) {
          const std::size_t idx = static_cast<std::size_t>((w + i) % 8);
          arr.write(tx, idx, i);
        });
      }
    });
  }
  threads.clear();
  // One more commit per slot prunes with no active snapshots.
  stm.run_top([&](Tx& tx) {
    for (std::size_t i = 0; i < 8; ++i) arr.write(tx, i, -1);
  });
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_LE(arr.slot(i).chain_length(), 3u) << "slot " << i;
  }
}

// Abort storms must not leak tree gates: after heavy sibling conflicts the
// runtime still accepts new transactions promptly.
TEST(StmRobustness, GateTokensSurviveAbortStorms) {
  StmConfig cfg;
  cfg.initial_top = 2;
  cfg.initial_children = 2;
  cfg.pool_threads = 2;
  Stm stm{cfg};
  VBox<int> hot{0};
  std::vector<std::jthread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20; ++i) {
        stm.run_top([&](Tx& tx) {
          std::vector<std::function<void(Tx&)>> kids;
          for (int k = 0; k < 6; ++k) {
            kids.emplace_back(
                [&](Tx& child) { hot.write(child, hot.read(child) + 1); });
          }
          tx.run_children(std::move(kids));
        });
      }
    });
  }
  threads.clear();
  EXPECT_EQ(hot.peek(), 2 * 20 * 6);
  // A fresh transaction still runs fine (no leaked tokens/deadlock).
  stm.run_top([&](Tx& tx) {
    tx.run_children({[&](Tx& child) { hot.write(child, 0); }});
  });
  EXPECT_EQ(hot.peek(), 0);
}

}  // namespace
}  // namespace autopn::stm
