// Rebalancer policy tests — the ContTune-style conservative rules, checked
// as pure functions of (shard snapshots, tenant loads): a calm cluster never
// churns, satisfied tenants are never moved, moves only target strictly
// cooler healthy shards with headroom, busiest violators go first, and the
// per-round move budget holds.
#include <gtest/gtest.h>

#include <vector>

#include "router/rebalancer.hpp"

namespace autopn::router {
namespace {

RebalanceConfig tight_config() {
  RebalanceConfig cfg;
  cfg.slo_p99_us = 10'000;
  cfg.headroom_fraction = 0.8;  // targets must sit below 8ms
  cfg.max_moves_per_round = 1;
  cfg.min_tenant_requests = 16;
  return cfg;
}

ShardSnapshot shard(std::uint32_t id, std::uint64_t p99_us,
                    bool healthy = true) {
  ShardSnapshot s;
  s.shard_id = id;
  s.healthy = healthy;
  s.p99_us = p99_us;
  return s;
}

SlotStat slot(std::uint16_t index, std::uint64_t count, std::uint64_t p99_us) {
  return SlotStat{index, count, p99_us};
}

TenantLoad tenant(std::uint16_t id, std::uint32_t shard_id,
                  std::uint64_t requests) {
  return TenantLoad{id, shard_id, requests};
}

TEST(Rebalancer, CalmClusterProposesNothing) {
  Rebalancer rb(tight_config());
  std::vector<ShardSnapshot> shards = {shard(0, 5'000), shard(1, 3'000)};
  shards[0].slots = {slot(1, 100, 5'000)};
  const auto moves = rb.propose(shards, {tenant(1, 0, 100)});
  EXPECT_TRUE(moves.empty());
}

TEST(Rebalancer, SingleShardClusterNeverMoves) {
  Rebalancer rb(tight_config());
  std::vector<ShardSnapshot> shards = {shard(0, 90'000)};
  shards[0].slots = {slot(1, 100, 90'000)};
  EXPECT_TRUE(rb.propose(shards, {tenant(1, 0, 100)}).empty());
}

TEST(Rebalancer, NeverMovesASatisfiedTenantOffAHotShard) {
  // Shard 0 violates overall, but tenant 1's own slot meets the SLO —
  // the ContTune rule: never regress a satisfied SLO by acting on it.
  Rebalancer rb(tight_config());
  std::vector<ShardSnapshot> shards = {shard(0, 50'000), shard(1, 2'000)};
  shards[0].slots = {slot(1, 500, 4'000), slot(2, 500, 80'000)};
  const auto moves =
      rb.propose(shards, {tenant(1, 0, 500), tenant(2, 0, 500)});
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].tenant_id, 2);  // only the violating tenant moves
  EXPECT_EQ(moves[0].from_shard, 0u);
  EXPECT_EQ(moves[0].to_shard, 1u);
}

TEST(Rebalancer, NeverMovesTenantsOffASatisfiedShard) {
  // Tenant 2's slot is hot, but its shard overall meets the SLO — moves
  // are a remedy for violating shards, not an optimization.
  Rebalancer rb(tight_config());
  std::vector<ShardSnapshot> shards = {shard(0, 8'000), shard(1, 1'000)};
  shards[0].slots = {slot(2, 500, 60'000)};
  EXPECT_TRUE(rb.propose(shards, {tenant(2, 0, 500)}).empty());
}

TEST(Rebalancer, RequiresMinimumRequestSignal) {
  Rebalancer rb(tight_config());
  std::vector<ShardSnapshot> shards = {shard(0, 50'000), shard(1, 2'000)};
  shards[0].slots = {slot(1, 5, 80'000)};
  // 5 requests < min_tenant_requests=16: no p99 worth acting on.
  EXPECT_TRUE(rb.propose(shards, {tenant(1, 0, 5)}).empty());
}

TEST(Rebalancer, NoHeadroomTargetMeansNoMoves) {
  Rebalancer rb(tight_config());
  // Shard 1 is satisfied (9ms < 10ms SLO) but above the 8ms headroom bar:
  // it must not absorb more load, so nothing moves anywhere.
  std::vector<ShardSnapshot> shards = {shard(0, 50'000), shard(1, 9'000)};
  shards[0].slots = {slot(1, 500, 80'000)};
  EXPECT_TRUE(rb.propose(shards, {tenant(1, 0, 500)}).empty());
}

TEST(Rebalancer, NeverTargetsAnUnhealthyShard) {
  Rebalancer rb(tight_config());
  std::vector<ShardSnapshot> shards = {shard(0, 50'000),
                                       shard(1, 0, /*healthy=*/false)};
  shards[0].slots = {slot(1, 500, 80'000)};
  EXPECT_TRUE(rb.propose(shards, {tenant(1, 0, 500)}).empty());
}

TEST(Rebalancer, EvacuatesAnUnhealthyShard) {
  // A downed shard reports no slots; its tenants count as violating and
  // move to any healthy target, including one hotter than the (stale)
  // reading of the dead shard.
  Rebalancer rb(tight_config());
  std::vector<ShardSnapshot> shards = {shard(0, 0, /*healthy=*/false),
                                       shard(1, 5'000)};
  const auto moves = rb.propose(shards, {tenant(3, 0, 100)});
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].tenant_id, 3);
  EXPECT_EQ(moves[0].to_shard, 1u);
}

TEST(Rebalancer, BusiestViolatorMovesFirstAndBudgetHolds) {
  RebalanceConfig cfg = tight_config();
  cfg.max_moves_per_round = 1;
  Rebalancer rb(cfg);
  std::vector<ShardSnapshot> shards = {shard(0, 50'000), shard(1, 2'000)};
  shards[0].slots = {slot(1, 100, 70'000), slot(2, 900, 70'000)};
  const auto moves =
      rb.propose(shards, {tenant(1, 0, 100), tenant(2, 0, 900)});
  ASSERT_EQ(moves.size(), 1u);  // budget: one move per round
  EXPECT_EQ(moves[0].tenant_id, 2);  // the busiest violator
}

TEST(Rebalancer, MultiMoveRoundSpreadsAcrossTargets) {
  RebalanceConfig cfg = tight_config();
  cfg.max_moves_per_round = 2;
  Rebalancer rb(cfg);
  std::vector<ShardSnapshot> shards = {shard(0, 50'000), shard(1, 2'000),
                                       shard(2, 3'000)};
  shards[0].slots = {slot(1, 500, 70'000), slot(2, 400, 70'000)};
  const auto moves =
      rb.propose(shards, {tenant(1, 0, 500), tenant(2, 0, 400)});
  ASSERT_EQ(moves.size(), 2u);
  // Round-robin target assignment: the two moves land on distinct shards
  // instead of dogpiling the single coolest one.
  EXPECT_NE(moves[0].to_shard, moves[1].to_shard);
}

TEST(Rebalancer, TargetMustBeStrictlyCoolerThanTheSource) {
  Rebalancer rb(tight_config());
  // Both shards violate; shard 1 has headroom? No — craft shard 1 cooler
  // than SLO×headroom but HOTTER than the source: impossible by
  // construction (source violates, target sits under headroom), so test
  // the inverse: equal-heat shards never trade tenants.
  std::vector<ShardSnapshot> shards = {shard(0, 50'000), shard(1, 50'000)};
  shards[0].slots = {slot(1, 500, 70'000)};
  shards[1].slots = {slot(2, 500, 70'000)};
  EXPECT_TRUE(
      rb.propose(shards, {tenant(1, 0, 500), tenant(2, 1, 500)}).empty());
}

// ---- propose_scale: the capacity recommendation ------------------------

TEST(Rebalancer, ScaleAddWhenEveryHealthyShardViolates) {
  // All hot: migration is a zero-sum shuffle (no target with headroom), so
  // only new capacity helps.
  Rebalancer rb(tight_config());
  const auto proposal =
      rb.propose_scale({shard(0, 50'000), shard(1, 40'000)});
  EXPECT_EQ(proposal.action, ScaleAction::kAdd);
}

TEST(Rebalancer, ScaleHoldsInTheMixedRegime) {
  // One violating, one with headroom: the moves policy owns this regime.
  Rebalancer rb(tight_config());
  const auto proposal = rb.propose_scale({shard(0, 50'000), shard(1, 3'000)});
  EXPECT_EQ(proposal.action, ScaleAction::kHold);
}

TEST(Rebalancer, ScaleRemovesTheCoolestWhenAllHaveHeadroom) {
  // Everyone under slo × headroom (8ms here): the coolest shard can retire
  // without regressing any satisfied SLO.
  Rebalancer rb(tight_config());
  const auto proposal = rb.propose_scale(
      {shard(0, 6'000), shard(1, 2'000), shard(2, 4'000)});
  EXPECT_EQ(proposal.action, ScaleAction::kRemove);
  EXPECT_EQ(proposal.shard_id, 1u);
}

TEST(Rebalancer, ScaleNeverRemovesTheLastHealthyShard) {
  Rebalancer rb(tight_config());
  // A lone cool shard holds — removal requires >= 2 healthy survivors-to-be.
  const auto lone = rb.propose_scale({shard(0, 1'000)});
  EXPECT_EQ(lone.action, ScaleAction::kHold);
  // Unhealthy shards don't count toward the two: one cool healthy shard
  // plus a dead one still holds.
  const auto with_dead =
      rb.propose_scale({shard(0, 1'000), shard(1, 0, /*healthy=*/false)});
  EXPECT_EQ(with_dead.action, ScaleAction::kHold);
}

TEST(Rebalancer, ScaleIgnoresUnhealthyShardsEntirely) {
  Rebalancer rb(tight_config());
  // The only healthy shard violates: kAdd, regardless of the dead one's
  // (stale, zeroed) KPIs.
  const auto proposal =
      rb.propose_scale({shard(0, 50'000), shard(1, 0, /*healthy=*/false)});
  EXPECT_EQ(proposal.action, ScaleAction::kAdd);
  // No healthy shards at all: hold — there is nothing to reason about.
  const auto none = rb.propose_scale({shard(0, 0, /*healthy=*/false)});
  EXPECT_EQ(none.action, ScaleAction::kHold);
}

TEST(Rebalancer, ScaleBoundaryIsHeadroomNotSlo) {
  // Between slo × headroom (8ms) and the SLO (10ms): satisfied but without
  // slack — neither add (not violating) nor remove (no absorption margin).
  Rebalancer rb(tight_config());
  const auto proposal = rb.propose_scale({shard(0, 9'000), shard(1, 9'000)});
  EXPECT_EQ(proposal.action, ScaleAction::kHold);
}

}  // namespace
}  // namespace autopn::router
