// Tests for Dataset and OLS linear regression.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/linear.hpp"
#include "util/rng.hpp"

namespace autopn::ml {
namespace {

Dataset make_linear_data(double w0, double w1, double bias, std::size_t n,
                         double noise, std::uint64_t seed) {
  util::Rng rng{seed};
  Dataset data{2};
  for (std::size_t i = 0; i < n; ++i) {
    const std::array<double, 2> x{rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)};
    data.add(x, w0 * x[0] + w1 * x[1] + bias + noise * rng.gaussian());
  }
  return data;
}

TEST(Dataset, AddAndAccess) {
  Dataset d{2};
  d.add(std::array{1.0, 2.0}, 3.0);
  d.add(std::array{4.0, 5.0}, 6.0);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.dims(), 2u);
  EXPECT_DOUBLE_EQ(d.x(1)[0], 4.0);
  EXPECT_DOUBLE_EQ(d.y(0), 3.0);
}

TEST(Dataset, ArityMismatchThrows) {
  Dataset d{2};
  EXPECT_THROW(d.add(std::array{1.0}, 2.0), std::invalid_argument);
}

TEST(Dataset, ZeroDimsRejected) { EXPECT_THROW(Dataset{0}, std::invalid_argument); }

TEST(Dataset, SubsetSelectsRows) {
  Dataset d{1};
  for (int i = 0; i < 5; ++i) d.add(std::array{double(i)}, 10.0 * i);
  const std::vector<std::size_t> rows{1, 3};
  const Dataset sub = d.subset(rows);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_DOUBLE_EQ(sub.y(0), 10.0);
  EXPECT_DOUBLE_EQ(sub.y(1), 30.0);
}

TEST(Dataset, BootstrapSameSizeDrawsFromOriginal) {
  util::Rng rng{5};
  Dataset d{1};
  for (int i = 0; i < 20; ++i) d.add(std::array{double(i)}, double(i));
  const Dataset boot = d.bootstrap_sample(rng);
  EXPECT_EQ(boot.size(), d.size());
  for (std::size_t i = 0; i < boot.size(); ++i) {
    EXPECT_DOUBLE_EQ(boot.x(i)[0], boot.y(i));  // pairs stay intact
    EXPECT_GE(boot.y(i), 0.0);
    EXPECT_LT(boot.y(i), 20.0);
  }
}

TEST(Dataset, BootstrapVaries) {
  util::Rng rng{6};
  Dataset d{1};
  for (int i = 0; i < 50; ++i) d.add(std::array{double(i)}, double(i));
  const Dataset a = d.bootstrap_sample(rng);
  const Dataset b = d.bootstrap_sample(rng);
  bool differ = false;
  for (std::size_t i = 0; i < a.size() && !differ; ++i) differ = (a.y(i) != b.y(i));
  EXPECT_TRUE(differ);
}

TEST(Dataset, TargetMoments) {
  Dataset d{1};
  for (double y : {1.0, 2.0, 3.0}) d.add(std::array{0.0}, y);
  EXPECT_DOUBLE_EQ(d.target_mean(), 2.0);
  EXPECT_NEAR(d.target_stddev(), 1.0, 1e-12);
}

TEST(SolveLinearSystem, Identity) {
  std::vector<std::vector<double>> a{{1, 0}, {0, 1}};
  std::vector<double> b{3.0, 4.0};
  ASSERT_TRUE(solve_linear_system(a, b));
  EXPECT_DOUBLE_EQ(b[0], 3.0);
  EXPECT_DOUBLE_EQ(b[1], 4.0);
}

TEST(SolveLinearSystem, KnownSolution) {
  // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
  std::vector<std::vector<double>> a{{2, 1}, {1, 3}};
  std::vector<double> b{5.0, 10.0};
  ASSERT_TRUE(solve_linear_system(a, b));
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(SolveLinearSystem, SingularDetected) {
  std::vector<std::vector<double>> a{{1, 2}, {2, 4}};
  std::vector<double> b{1.0, 2.0};
  EXPECT_FALSE(solve_linear_system(a, b));
}

TEST(SolveLinearSystem, NeedsPivoting) {
  // Leading zero forces a row swap.
  std::vector<std::vector<double>> a{{0, 1}, {1, 0}};
  std::vector<double> b{2.0, 7.0};
  ASSERT_TRUE(solve_linear_system(a, b));
  EXPECT_NEAR(b[0], 7.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(LinearModel, RecoversExactPlane) {
  const Dataset data = make_linear_data(2.0, -1.5, 4.0, 50, 0.0, 11);
  const LinearModel model = LinearModel::fit(data);
  EXPECT_NEAR(model.weights()[0], 2.0, 1e-6);
  EXPECT_NEAR(model.weights()[1], -1.5, 1e-6);
  EXPECT_NEAR(model.bias(), 4.0, 1e-5);
  EXPECT_NEAR(model.rmse(data), 0.0, 1e-6);
}

TEST(LinearModel, NoisyFitCloseToTruth) {
  const Dataset data = make_linear_data(1.0, 3.0, -2.0, 500, 0.5, 12);
  const LinearModel model = LinearModel::fit(data);
  EXPECT_NEAR(model.weights()[0], 1.0, 0.05);
  EXPECT_NEAR(model.weights()[1], 3.0, 0.05);
  EXPECT_NEAR(model.bias(), -2.0, 0.3);
}

TEST(LinearModel, EmptyDataGivesZeroModel) {
  Dataset data{2};
  const LinearModel model = LinearModel::fit(data);
  EXPECT_DOUBLE_EQ(model.predict(std::array{5.0, 5.0}), 0.0);
}

TEST(LinearModel, SingleRowGivesConstant) {
  Dataset data{2};
  data.add(std::array{1.0, 2.0}, 9.0);
  const LinearModel model = LinearModel::fit(data);
  EXPECT_DOUBLE_EQ(model.predict(std::array{100.0, -3.0}), 9.0);
}

TEST(LinearModel, DegenerateFeatureFallsBack) {
  // All x identical: slope indeterminate; must not blow up, prediction near
  // the target mean at that x.
  Dataset data{1};
  for (double y : {1.0, 2.0, 3.0, 4.0}) data.add(std::array{5.0}, y);
  const LinearModel model = LinearModel::fit(data);
  EXPECT_NEAR(model.predict(std::array{5.0}), 2.5, 1e-3);
}

TEST(LinearModel, MaeAndRmseRelation) {
  const Dataset data = make_linear_data(1.0, 1.0, 0.0, 200, 1.0, 13);
  const LinearModel model = LinearModel::fit(data);
  EXPECT_LE(model.mae(data), model.rmse(data) + 1e-12);  // Jensen
  EXPECT_GT(model.mae(data), 0.0);
}

TEST(LinearModel, EffectiveParamsCountsNonZero) {
  const LinearModel m{1.0, {0.0, 2.0, 0.0}};
  EXPECT_EQ(m.effective_params(), 2u);  // bias + one weight
}

}  // namespace
}  // namespace autopn::ml
