// Tests for EI, the SMBO engine, stop criteria, and the AutoPN optimizer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "opt/autopn_optimizer.hpp"
#include "opt/ei.hpp"
#include "opt/runner.hpp"
#include "opt/smbo.hpp"
#include "sim/surface.hpp"
#include "sim/workload.hpp"

namespace autopn::opt {
namespace {

TEST(NormalDistribution, PdfCdfKnownValues) {
  EXPECT_NEAR(norm_pdf(0.0), 0.3989422804, 1e-9);
  EXPECT_NEAR(norm_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(norm_cdf(1.6448536), 0.95, 1e-6);
  EXPECT_NEAR(norm_cdf(-1.6448536), 0.05, 1e-6);
}

TEST(ExpectedImprovement, ZeroSigmaDegenerates) {
  EXPECT_DOUBLE_EQ(expected_improvement(10.0, 0.0, 8.0), 2.0);
  EXPECT_DOUBLE_EQ(expected_improvement(7.0, 0.0, 8.0), 0.0);
}

TEST(ExpectedImprovement, MatchesNumericIntegration) {
  // EI = integral over the Gaussian of max(x - fmax, 0).
  const double mu = 5.0;
  const double sigma = 2.0;
  const double fmax = 6.0;
  double numeric = 0.0;
  const int steps = 200000;
  const double lo = mu - 10 * sigma;
  const double hi = mu + 10 * sigma;
  const double dx = (hi - lo) / steps;
  for (int i = 0; i < steps; ++i) {
    const double x = lo + (i + 0.5) * dx;
    const double density = norm_pdf((x - mu) / sigma) / sigma;
    numeric += std::max(x - fmax, 0.0) * density * dx;
  }
  EXPECT_NEAR(expected_improvement(mu, sigma, fmax), numeric, 1e-4);
}

TEST(ExpectedImprovement, MonotoneInMeanAndUncertainty) {
  // Higher mean -> higher EI; higher sigma (below incumbent) -> higher EI.
  EXPECT_GT(expected_improvement(9.0, 1.0, 8.0), expected_improvement(7.0, 1.0, 8.0));
  EXPECT_GT(expected_improvement(5.0, 3.0, 8.0), expected_improvement(5.0, 1.0, 8.0));
  EXPECT_GT(expected_improvement(5.0, 1.0, 8.0), 0.0);  // always positive w/ sigma
}

TEST(ProbabilityOfImprovement, Basics) {
  EXPECT_DOUBLE_EQ(probability_of_improvement(10.0, 0.0, 8.0), 1.0);
  EXPECT_DOUBLE_EQ(probability_of_improvement(7.0, 0.0, 8.0), 0.0);
  EXPECT_NEAR(probability_of_improvement(8.0, 1.0, 8.0), 0.5, 1e-12);
}

TEST(StopCriteria, EiThreshold) {
  EiThresholdStop stop{0.10};
  EXPECT_FALSE(stop.should_stop(0.5, 0, 0));
  EXPECT_TRUE(stop.should_stop(0.05, 0, 0));
}

TEST(StopCriteria, NoImprove) {
  NoImproveStop stop{2, 0.10};
  EXPECT_FALSE(stop.should_stop(0, 100.0, 100.0));  // first
  EXPECT_FALSE(stop.should_stop(0, 101.0, 101.0));  // stale x1
  EXPECT_TRUE(stop.should_stop(0, 102.0, 102.0));   // stale x2
}

TEST(StopCriteria, Hybrids) {
  AnyStop any{std::make_unique<EiThresholdStop>(0.10),
              std::make_unique<EiThresholdStop>(0.01)};
  EXPECT_TRUE(any.should_stop(0.05, 0, 0));   // first fires
  AllStop all{std::make_unique<EiThresholdStop>(0.10),
              std::make_unique<EiThresholdStop>(0.01)};
  EXPECT_FALSE(all.should_stop(0.05, 0, 0));  // second does not
  EXPECT_TRUE(all.should_stop(0.005, 0, 0));
}

TEST(StopCriteria, StubbornOnlyAtOptimum) {
  StubbornStop stop{1000.0};
  EXPECT_FALSE(stop.should_stop(0.0, 999.0, 999.0));
  EXPECT_TRUE(stop.should_stop(1.0, 0.0, 1000.0));
}

/// The tpcc-med surface model as a deterministic evaluator.
struct TpccMedFixture {
  ConfigSpace space{48};
  sim::SurfaceModel model{sim::workload_by_name("tpcc-med"), 48};
  Evaluator eval = [this](const Config& cfg) { return model.mean_throughput(cfg); };
  sim::SurfaceModel::Optimum opt = model.optimum(space);
};

TEST(Smbo, ExploresInitialSamplesFirst) {
  TpccMedFixture fx;
  const auto initial = fx.space.biased_sample(9);
  Smbo smbo{fx.space, initial, std::make_unique<EiThresholdStop>(0.10), {}, 1};
  for (std::size_t i = 0; i < initial.size(); ++i) {
    const auto p = smbo.propose();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*p, initial[i]);
    smbo.observe(*p, fx.eval(*p));
  }
  EXPECT_EQ(smbo.model_updates(), 0u);  // no model needed yet
}

TEST(Smbo, ConvergesNearOptimumOnTpccMed) {
  TpccMedFixture fx;
  Smbo smbo{fx.space, fx.space.biased_sample(9),
            std::make_unique<EiThresholdStop>(0.10), {}, 2};
  const auto result = run_to_convergence(smbo, fx.eval);
  const double dfo = (fx.opt.throughput - result.final_best_kpi) / fx.opt.throughput;
  EXPECT_LT(dfo, 0.15);
  // Far fewer explorations than the 198-point space.
  EXPECT_LT(result.explorations(), 60u);
}

TEST(Smbo, NeverProposesExploredConfig) {
  TpccMedFixture fx;
  Smbo smbo{fx.space, fx.space.biased_sample(9),
            std::make_unique<EiThresholdStop>(0.01), {}, 3};
  std::set<std::pair<int, int>> seen;
  const auto result = run_to_convergence(smbo, fx.eval);
  for (const auto& step : result.steps) {
    EXPECT_TRUE(seen.emplace(step.config.t, step.config.c).second);
  }
}

TEST(Smbo, TighterThresholdExploresMore) {
  TpccMedFixture fx;
  Smbo loose{fx.space, fx.space.biased_sample(9),
             std::make_unique<EiThresholdStop>(0.10), {}, 4};
  Smbo tight{fx.space, fx.space.biased_sample(9),
             std::make_unique<EiThresholdStop>(0.01), {}, 4};
  const auto r_loose = run_to_convergence(loose, fx.eval);
  const auto r_tight = run_to_convergence(tight, fx.eval);
  EXPECT_GE(r_tight.explorations(), r_loose.explorations());
}

TEST(Smbo, StubbornExploresUntilOptimumFound) {
  TpccMedFixture fx;
  Smbo smbo{fx.space, fx.space.biased_sample(9),
            std::make_unique<StubbornStop>(fx.opt.throughput), {}, 5};
  const auto result = run_to_convergence(smbo, fx.eval, 250);
  EXPECT_NEAR(result.final_best_kpi, fx.opt.throughput,
              fx.opt.throughput * 1e-9);
}

TEST(Smbo, MaxIterationCap) {
  TpccMedFixture fx;
  SmboParams params;
  params.max_iterations = 3;
  Smbo smbo{fx.space, fx.space.biased_sample(3),
            std::make_unique<StubbornStop>(1e18), params, 6};
  const auto result = run_to_convergence(smbo, fx.eval);
  EXPECT_EQ(result.explorations(), 3u + 3u);  // initial + capped iterations
}

TEST(Smbo, UcbAcquisitionConverges) {
  TpccMedFixture fx;
  SmboParams params;
  params.acquisition = SmboParams::Acquisition::kUcb;
  Smbo smbo{fx.space, fx.space.biased_sample(9),
            std::make_unique<EiThresholdStop>(0.10), params, 11};
  const auto result = run_to_convergence(smbo, fx.eval);
  const double dfo = (fx.opt.throughput - result.final_best_kpi) / fx.opt.throughput;
  EXPECT_LT(dfo, 0.20);
}

TEST(Smbo, KnnSurrogateConverges) {
  TpccMedFixture fx;
  SmboParams params;
  params.surrogate = SmboParams::Surrogate::kKnn;
  Smbo smbo{fx.space, fx.space.biased_sample(9),
            std::make_unique<EiThresholdStop>(0.10), params, 12};
  const auto result = run_to_convergence(smbo, fx.eval);
  const double dfo = (fx.opt.throughput - result.final_best_kpi) / fx.opt.throughput;
  EXPECT_LT(dfo, 0.30);
  EXPECT_LT(result.explorations(), 198u);
}

TEST(Smbo, UcbBetaZeroIsPureExploitation) {
  // beta = 0 makes UCB = mu: the stop statistic is the predicted headroom,
  // which collapses quickly; the run must still terminate near a good point.
  TpccMedFixture fx;
  SmboParams params;
  params.acquisition = SmboParams::Acquisition::kUcb;
  params.ucb_beta = 0.0;
  Smbo smbo{fx.space, fx.space.biased_sample(9),
            std::make_unique<EiThresholdStop>(0.10), params, 13};
  const auto result = run_to_convergence(smbo, fx.eval);
  EXPECT_GT(result.final_best_kpi, 0.0);
  EXPECT_LT(result.explorations(), 100u);
}

TEST(AutoPn, ConvergesWithinOnePercentOnTpccMed) {
  // The paper's headline accuracy: ~1% average DFO. On the deterministic
  // tpcc-med surface AutoPN (SMBO + hill climbing) should essentially nail
  // the optimum.
  TpccMedFixture fx;
  AutoPnParams params;
  AutoPnOptimizer autopn{fx.space, params, 7};
  const auto result = run_to_convergence(autopn, fx.eval);
  const double dfo = (fx.opt.throughput - result.final_best_kpi) / fx.opt.throughput;
  EXPECT_LT(dfo, 0.01);
  EXPECT_LT(result.explorations(), 80u);
}

TEST(AutoPn, RefinementImprovesOrMatchesSmboOnly) {
  TpccMedFixture fx;
  AutoPnParams with;
  AutoPnParams without;
  without.hill_climb_refinement = false;
  double dfo_with = 0.0;
  double dfo_without = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    AutoPnOptimizer a{fx.space, with, seed};
    AutoPnOptimizer b{fx.space, without, seed};
    dfo_with += fx.opt.throughput - run_to_convergence(a, fx.eval).final_best_kpi;
    dfo_without += fx.opt.throughput - run_to_convergence(b, fx.eval).final_best_kpi;
  }
  EXPECT_LE(dfo_with, dfo_without + 1e-9);
}

TEST(AutoPn, PhaseProgression) {
  TpccMedFixture fx;
  AutoPnOptimizer autopn{fx.space, {}, 8};
  EXPECT_EQ(autopn.phase(), 1);
  (void)run_to_convergence(autopn, fx.eval);
  EXPECT_EQ(autopn.phase(), 3);
  EXPECT_GE(autopn.smbo_explorations(), 9u);
}

TEST(AutoPn, WorksOnNoisySamples) {
  TpccMedFixture fx;
  util::Rng rng{99};
  AutoPnOptimizer autopn{fx.space, {}, 9};
  const auto result = run_to_convergence(autopn, [&](const Config& cfg) {
    return fx.model.sample(cfg, /*window_seconds=*/1.0, rng);
  });
  const double dfo =
      fx.model.distance_from_optimum(fx.space, result.final_best);
  EXPECT_LT(dfo, 0.15);
}

TEST(Smbo, PriorWarmStartConvergesFromThreeSamples) {
  // With the exact surface injected as a prior, three initial samples are
  // enough: the surrogate starts out already knowing the shape and EI
  // collapses onto the optimum region instead of exploring blind.
  TpccMedFixture fx;
  Prior prior;
  for (const Config& cfg : fx.space.all()) {
    prior.observations.push_back({cfg, fx.model.mean_throughput(cfg)});
  }
  Smbo smbo{fx.space, fx.space.biased_sample(3),
            std::make_unique<EiThresholdStop>(0.10), {}, 21};
  smbo.set_prior(prior);
  EXPECT_TRUE(smbo.has_prior());
  const auto result = run_to_convergence(smbo, fx.eval);
  const double dfo = (fx.opt.throughput - result.final_best_kpi) / fx.opt.throughput;
  EXPECT_LT(dfo, 0.15);
  EXPECT_LT(result.explorations(), 60u);
}

TEST(Smbo, MisleadingPriorDecaysAndDataWins) {
  // An inverted prior (worst configs look best) may not derail the search
  // forever: it is dropped after decay_observations live windows, and live
  // observations always override pseudo-observations at explored configs.
  TpccMedFixture fx;
  Prior prior;
  prior.decay_observations = 6;
  for (const Config& cfg : fx.space.all()) {
    prior.observations.push_back(
        {cfg, fx.opt.throughput - fx.model.mean_throughput(cfg) + 1.0});
  }
  Smbo smbo{fx.space, fx.space.biased_sample(9),
            std::make_unique<EiThresholdStop>(0.05), {}, 22};
  smbo.set_prior(prior);
  const auto result = run_to_convergence(smbo, fx.eval);
  EXPECT_GT(result.final_best_kpi, 0.0);
  const double dfo = (fx.opt.throughput - result.final_best_kpi) / fx.opt.throughput;
  EXPECT_LT(dfo, 0.5);  // recovered to a reasonable config despite the prior
}

TEST(AutoPn, BootstrapPointsDefaultStaysNine) {
  // The paper's blind bootstrap is 9 biased samples; the configurable knob
  // must not drift the default (existing behavior is pinned on it).
  EXPECT_EQ(AutoPnParams{}.bootstrap_points, 9u);
  EXPECT_FALSE(AutoPnParams{}.prior.has_value());
}

TEST(AutoPn, WarmStartExploresNoMoreThanCold) {
  // Warm start = model prior + 3-point bootstrap. With an exact prior the
  // warm optimizer must reach a comparable optimum in at most as many live
  // windows as the cold 9-point bootstrap.
  TpccMedFixture fx;
  AutoPnParams cold;
  AutoPnParams warm;
  Prior prior;
  for (const Config& cfg : fx.space.all()) {
    prior.observations.push_back({cfg, fx.model.mean_throughput(cfg)});
  }
  warm.prior = prior;
  std::size_t warm_total = 0;
  std::size_t cold_total = 0;
  double warm_dfo = 0.0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    AutoPnOptimizer a{fx.space, warm, seed};
    AutoPnOptimizer b{fx.space, cold, seed};
    const auto ra = run_to_convergence(a, fx.eval);
    const auto rb = run_to_convergence(b, fx.eval);
    warm_total += ra.explorations();
    cold_total += rb.explorations();
    warm_dfo = std::max(
        warm_dfo, (fx.opt.throughput - ra.final_best_kpi) / fx.opt.throughput);
  }
  EXPECT_LE(warm_total, cold_total);
  EXPECT_LT(warm_dfo, 0.05);
}

TEST(AutoPn, SmallInitialSampleStillRuns) {
  TpccMedFixture fx;
  AutoPnParams params;
  params.bootstrap_points = 3;
  AutoPnOptimizer autopn{fx.space, params, 10};
  const auto result = run_to_convergence(autopn, fx.eval);
  EXPECT_GE(result.explorations(), 3u);
  EXPECT_GT(result.final_best_kpi, 0.0);
}

}  // namespace
}  // namespace autopn::opt
