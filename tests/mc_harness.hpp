#pragma once
// Shared command-line driver for the mc_* model-checking harnesses
// (docs/MODEL_CHECKING.md). Each harness supplies a body that builds fresh
// component state and spawns mc::Threads; this driver owns flag parsing, the
// exploration run, reporting, and the process exit code, so every harness
// speaks the same CLI:
//
//   (no flags)          exhaustive exploration at the default budget
//   --smoke             reduced budget (preemption bound 1, capped schedules)
//                       for the run_all.sh mc-smoke gate
//   --pct[=N]           PCT random walk, N schedules (default 2000)
//   --seed=N            PCT seed
//   --replay=SCHED      run exactly one schedule (a Failure's schedule
//                       string, e.g. --replay=0,1,1,0) and dump its trace
//   --preemption-bound=N / --max-schedules=N / --max-steps=N
//                       budget overrides
//   --expect-failure    fixture mode: exit 0 iff a failure IS found AND
//                       replaying its schedule reproduces a failure of the
//                       same kind — how the weakened-annotation fixtures
//                       prove the checker actually detects and replays.
//
// Exit codes: 0 verdict met, 1 verdict missed, 2 bad usage.

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <stdexcept>
#include <string>

#include "mc/explore.hpp"

namespace autopn::mc_harness {

struct Config {
  mc::Options options;
  bool expect_failure = false;
};

inline bool parse_flag(const std::string& arg, const char* name,
                       std::string* value) {
  const std::string prefix = std::string{name} + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

inline int run(int argc, char** argv, const char* name,
               const std::function<void()>& body) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    try {
      if (arg == "--smoke") {
        cfg.options.preemption_bound = 1;
        cfg.options.max_schedules = 4000;
      } else if (arg == "--pct") {
        cfg.options.mode = mc::Mode::kPct;
        cfg.options.max_schedules = 2000;
      } else if (parse_flag(arg, "--pct", &value)) {
        cfg.options.mode = mc::Mode::kPct;
        cfg.options.max_schedules = std::stoull(value);
      } else if (parse_flag(arg, "--seed", &value)) {
        cfg.options.seed = std::stoull(value);
      } else if (parse_flag(arg, "--replay", &value)) {
        cfg.options.mode = mc::Mode::kReplay;
        cfg.options.replay = mc::parse_schedule(value);
      } else if (parse_flag(arg, "--preemption-bound", &value)) {
        cfg.options.preemption_bound = std::stoi(value);
      } else if (parse_flag(arg, "--max-schedules", &value)) {
        cfg.options.max_schedules = std::stoull(value);
      } else if (parse_flag(arg, "--max-steps", &value)) {
        cfg.options.max_steps = std::stoi(value);
      } else if (arg == "--expect-failure") {
        cfg.expect_failure = true;
      } else {
        std::fprintf(stderr, "%s: unknown flag %s\n", name, arg.c_str());
        return 2;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: bad value in %s: %s\n", name, arg.c_str(),
                   e.what());
      return 2;
    }
  }

  const mc::Result result = mc::explore(cfg.options, body);
  std::printf("%s: %s\n", name, result.summary().c_str());

  if (cfg.expect_failure) {
    if (result.ok()) {
      std::fprintf(stderr,
                   "%s: FIXTURE FAILED — expected the checker to report a "
                   "failure, but every schedule was clean\n",
                   name);
      return 1;
    }
    // The reported schedule must replay to the same failure kind — the
    // other half of the detect-and-replay contract.
    mc::Options replay_opts;
    replay_opts.mode = mc::Mode::kReplay;
    replay_opts.replay = mc::parse_schedule(result.failures.front().schedule);
    const mc::Result replayed = mc::explore(replay_opts, body);
    if (replayed.ok() ||
        replayed.failures.front().kind != result.failures.front().kind) {
      std::fprintf(stderr,
                   "%s: FIXTURE FAILED — failure found but --replay=%s did "
                   "not reproduce it\n",
                   name, result.failures.front().schedule.c_str());
      return 1;
    }
    std::printf("%s: expected failure found and replayed (%s)\n", name,
                mc::failure_kind_name(result.failures.front().kind));
    return 0;
  }
  return result.ok() ? 0 : 1;
}

}  // namespace autopn::mc_harness
