// HashRing property tests: deterministic placement independent of membership
// insertion order, bounded key movement on shard join/leave (the consistent-
// hashing contract — expected K/N keys move, and only onto/off the changed
// shard), and bounded distribution skew for tenant-id keys.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "router/ring.hpp"

namespace autopn::router {
namespace {

constexpr std::uint64_t kKeys = 100'000;

std::vector<std::uint32_t> owners_of_keys(const HashRing& ring) {
  std::vector<std::uint32_t> owners;
  owners.reserve(kKeys);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    owners.push_back(ring.owner(mix64(k)).value());
  }
  return owners;
}

TEST(HashRing, EmptyRingOwnsNothing) {
  HashRing ring;
  EXPECT_FALSE(ring.owner(42).has_value());
  EXPECT_FALSE(ring.owner_of_tenant(7).has_value());
  EXPECT_EQ(ring.shard_count(), 0u);
}

TEST(HashRing, MembershipIsIdempotent) {
  HashRing ring;
  ring.add_shard(3);
  ring.add_shard(3);
  EXPECT_EQ(ring.shard_count(), 1u);
  EXPECT_TRUE(ring.contains(3));
  ring.remove_shard(99);  // absent: no-op
  EXPECT_EQ(ring.shard_count(), 1u);
  ring.remove_shard(3);
  EXPECT_EQ(ring.shard_count(), 0u);
  EXPECT_FALSE(ring.owner(1).has_value());
}

TEST(HashRing, PlacementIsDeterministicAcrossInsertionOrder) {
  HashRing forward;
  for (std::uint32_t s = 0; s < 6; ++s) forward.add_shard(s);
  HashRing reverse;
  for (std::uint32_t s = 6; s-- > 0;) reverse.add_shard(s);

  // Two routers configured with the same shard set must agree on every
  // placement without coordinating.
  EXPECT_EQ(owners_of_keys(forward), owners_of_keys(reverse));
  for (std::uint16_t tenant = 0; tenant < 2048; ++tenant) {
    EXPECT_EQ(forward.owner_of_tenant(tenant), reverse.owner_of_tenant(tenant));
  }
}

TEST(HashRing, JoinMovesOnlyABoundedShareAndOnlyOntoTheJoiner) {
  constexpr std::uint32_t kShards = 4;
  HashRing ring;
  for (std::uint32_t s = 0; s < kShards; ++s) ring.add_shard(s);
  const std::vector<std::uint32_t> before = owners_of_keys(ring);

  ring.add_shard(kShards);  // 5th shard joins
  const std::vector<std::uint32_t> after = owners_of_keys(ring);

  std::uint64_t moved = 0;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    if (before[k] != after[k]) {
      ++moved;
      // A join can only STEAL arcs: every moved key lands on the joiner.
      ASSERT_EQ(after[k], kShards) << "key " << k << " moved between "
                                   << before[k] << " and " << after[k];
    }
  }
  // Expected movement is K/(N+1) = 20% of keys; vnode placement variance
  // stays well inside 2x of that. (Modulo placement would move ~80%.)
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, kKeys * 2 / (kShards + 1));
}

TEST(HashRing, LeaveMovesOnlyTheLeaversKeys) {
  constexpr std::uint32_t kShards = 5;
  HashRing ring;
  for (std::uint32_t s = 0; s < kShards; ++s) ring.add_shard(s);
  const std::vector<std::uint32_t> before = owners_of_keys(ring);

  ring.remove_shard(2);
  const std::vector<std::uint32_t> after = owners_of_keys(ring);

  for (std::uint64_t k = 0; k < kKeys; ++k) {
    if (before[k] == 2) {
      ASSERT_NE(after[k], 2u);  // orphaned keys found a new owner
    } else {
      // Keys not owned by the leaver must not move at all.
      ASSERT_EQ(before[k], after[k]) << "key " << k;
    }
  }
}

TEST(HashRing, TenantDistributionSkewIsBounded) {
  constexpr std::uint32_t kShards = 8;
  HashRing ring;  // default 64 vnodes per shard
  for (std::uint32_t s = 0; s < kShards; ++s) ring.add_shard(s);

  // Hash every 16-bit tenant id (the wire's tenant space, of which the
  // shards' KPI slots see tenant % 8) and check per-shard counts stay
  // within a 2x band of even — the balance 64 vnodes is meant to buy.
  std::map<std::uint32_t, std::uint64_t> counts;
  constexpr std::uint64_t kTenants = 65'536;
  for (std::uint64_t tenant = 0; tenant < kTenants; ++tenant) {
    counts[ring.owner_of_tenant(static_cast<std::uint16_t>(tenant)).value()]++;
  }
  ASSERT_EQ(counts.size(), kShards);  // every shard owns someone
  const std::uint64_t mean = kTenants / kShards;
  for (const auto& [shard, count] : counts) {
    EXPECT_GT(count, mean / 2) << "shard " << shard << " underloaded";
    EXPECT_LT(count, mean * 2) << "shard " << shard << " overloaded";
  }
}

TEST(HashRing, SmallTenantIdsDoNotAllPinToShardZero) {
  // Regression: vnode point seeds for shard 0 are the bare integers
  // 0..vnodes-1 — without domain separation between point and key hashing,
  // every tenant id below the vnode count hashes exactly onto a shard-0
  // point and the whole small-tenant space collapses onto one shard.
  HashRing ring;
  ring.add_shard(0);
  ring.add_shard(1);
  bool saw[2] = {false, false};
  for (std::uint16_t tenant = 0; tenant < 16; ++tenant) {
    saw[ring.owner_of_tenant(tenant).value()] = true;
  }
  EXPECT_TRUE(saw[0] && saw[1])
      << "tenants 0..15 all collapsed onto one of two shards";
}

}  // namespace
}  // namespace autopn::router
