// Client establishment under hostile conditions: a never-accepting listener
// (full backlog — SYNs dropped, the old blocking connect() would pin the
// caller to the kernel retry schedule for minutes), a closed port, and
// connect_with_backoff's capped-exponential retry both giving up after
// max_attempts and succeeding once a server appears mid-schedule. Also pins
// the handshake minor negotiation from the client's side: a modern ack
// yields wire_minor()==kWireMinor, a legacy short-form ack yields 0 and
// disables the stats RPC.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/wire.hpp"

namespace autopn::net {
namespace {

using SteadyClock = std::chrono::steady_clock;

double elapsed_seconds(SteadyClock::time_point since) {
  return std::chrono::duration<double>(SteadyClock::now() - since).count();
}

/// A listening socket that never calls accept(): with the minimum backlog
/// pre-filled, the kernel drops further SYNs and a connect attempt hangs
/// until its own timeout fires.
class NeverAcceptingListener {
 public:
  NeverAcceptingListener() {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(fd_, 0) != 0) {
      throw std::runtime_error{"listener setup failed"};
    }
    socklen_t len = sizeof addr;
    ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    // Pre-fill the accept queue so the connection under test cannot even
    // complete the TCP handshake. A couple of fillers covers the backlog
    // fudge the kernel applies on top of listen(fd, 0).
    for (int i = 0; i < 3; ++i) {
      const int filler = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
      sockaddr_in target{};
      target.sin_family = AF_INET;
      target.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      target.sin_port = htons(port_);
      timeval tv{0, 200000};  // bound each filler's own connect to 200ms
      ::setsockopt(filler, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
      ::connect(filler, reinterpret_cast<sockaddr*>(&target), sizeof target);
      fillers_.push_back(filler);
    }
  }

  ~NeverAcceptingListener() {
    for (const int fd : fillers_) ::close(fd);
    if (fd_ >= 0) ::close(fd_);
  }

  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<int> fillers_;
};

/// Finds a port that refuses connections: bind (claims the port, keeps the
/// kernel from reassigning it), no listen() — connects get ECONNREFUSED.
class RefusingPort {
 public:
  RefusingPort() {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      throw std::runtime_error{"bind failed"};
    }
    socklen_t len = sizeof addr;
    ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
  }
  ~RefusingPort() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Accepts one connection, parses its Hello, and answers a HelloAck with
/// the given minor (negotiated as a real server would). Runs on a thread.
void serve_one_handshake(int listen_fd, std::uint16_t ack_minor) {
  const int conn = ::accept(listen_fd, nullptr, nullptr);
  if (conn < 0) return;
  std::vector<std::uint8_t> buf(256);
  FrameDecoder decoder;
  for (;;) {
    const ssize_t n = ::recv(conn, buf.data(), buf.size(), 0);
    if (n <= 0) break;
    decoder.feed(buf.data(), static_cast<std::size_t>(n));
    if (auto frame = decoder.next()) {
      HelloAckFrame ack;
      ack.minor = ack_minor;
      ack.ok = true;
      std::vector<std::uint8_t> out;
      encode_hello_ack(out, ack);
      (void)::send(conn, out.data(), out.size(), MSG_NOSIGNAL);
      break;
    }
  }
  // Hold the connection open briefly so the client can finish reading.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ::close(conn);
}

TEST(NetClientRetry, ConnectBoundedAgainstNeverAcceptingListener) {
  NeverAcceptingListener listener;
  const auto start = SteadyClock::now();
  EXPECT_THROW(
      { Client::connect("127.0.0.1", listener.port(), 0.3); },
      std::exception);
  // Either the TCP connect or the handshake wait fires — both are bounded
  // by the 0.3s budget, nowhere near the kernel's minutes-long SYN retry.
  EXPECT_LT(elapsed_seconds(start), 5.0);
}

TEST(NetClientRetry, ConnectRefusedFailsFast) {
  RefusingPort refusing;
  const auto start = SteadyClock::now();
  EXPECT_THROW(
      { Client::connect("127.0.0.1", refusing.port(), 2.0); },
      std::system_error);
  EXPECT_LT(elapsed_seconds(start), 2.0);
}

TEST(NetClientRetry, BackoffGivesUpAfterMaxAttempts) {
  RefusingPort refusing;
  BackoffPolicy policy;
  policy.attempt_timeout_seconds = 0.2;
  policy.initial_backoff_seconds = 0.01;
  policy.max_backoff_seconds = 0.04;
  policy.max_attempts = 3;
  const auto start = SteadyClock::now();
  auto client = Client::connect_with_backoff("127.0.0.1", refusing.port(),
                                             policy);
  EXPECT_FALSE(client.has_value());
  // Two inter-attempt sleeps (10ms + 20ms) must have happened.
  EXPECT_GE(elapsed_seconds(start), 0.03);
  EXPECT_LT(elapsed_seconds(start), 5.0);
}

TEST(NetClientRetry, BackoffSucceedsOnceServerAppears) {
  RefusingPort port_holder;
  std::thread server{[fd = port_holder.fd()] {
    // First attempts see ECONNREFUSED (bound, not listening); then the
    // port starts listening and answers the handshake.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    if (::listen(fd, 4) != 0) return;
    serve_one_handshake(fd, kWireMinor);
  }};
  BackoffPolicy policy;
  policy.attempt_timeout_seconds = 1.0;
  policy.initial_backoff_seconds = 0.05;
  policy.max_backoff_seconds = 0.2;
  policy.max_attempts = 20;
  auto client = Client::connect_with_backoff("127.0.0.1", port_holder.port(),
                                             policy);
  server.join();
  ASSERT_TRUE(client.has_value());
  EXPECT_TRUE(client->connected());
  EXPECT_EQ(client->wire_minor(), kWireMinor);
}

TEST(NetClientRetry, LegacyAckNegotiatesMinorZeroAndDisablesStats) {
  RefusingPort port_holder;
  ASSERT_EQ(::listen(port_holder.fd(), 4), 0);
  std::thread server{[fd = port_holder.fd()] {
    serve_one_handshake(fd, /*ack_minor=*/0);  // legacy short-form ack
  }};
  auto client = Client::connect("127.0.0.1", port_holder.port(), 2.0);
  server.join();
  EXPECT_EQ(client.wire_minor(), 0u);
  EXPECT_FALSE(client.send_stats_request());
  EXPECT_TRUE(client.connected()) << "a refused stats RPC must not close";
}

}  // namespace
}  // namespace autopn::net
