// Unit tests for the sharded statistics layer: util::ShardedCounter
// exactness under concurrency, StmStats aggregation and the abort-kind
// breakdown, and the lock-free ContentionProfiler (claiming, ordering,
// overflow accounting, reset).
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "stm/stats.hpp"
#include "stm/vbox.hpp"
#include "util/sharded.hpp"

namespace autopn::stm {
namespace {

TEST(ShardedCounter, SingleThreadExact) {
  util::ShardedCounter counter;
  EXPECT_EQ(counter.load(), 0u);
  for (int i = 0; i < 100; ++i) counter.add();
  counter.add(17);
  EXPECT_EQ(counter.load(), 117u);
  counter.reset();
  EXPECT_EQ(counter.load(), 0u);
}

TEST(ShardedCounter, ShardCountRoundsUpToPowerOfTwo) {
  util::ShardedCounter counter{3};
  EXPECT_EQ(counter.shards(), 4u);
  EXPECT_TRUE((util::ShardedCounter::default_shards() &
               (util::ShardedCounter::default_shards() - 1)) == 0);
}

TEST(ShardedCounter, ConcurrentAddsSumExactly) {
  util::ShardedCounter counter{8};
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < kAddsPerThread; ++i) counter.add();
      });
    }
  }
  EXPECT_EQ(counter.load(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST(StmStats, SnapshotAggregatesAllCounters) {
  StmStats stats;
  stats.bump_read();
  stats.bump_read();
  stats.bump_write();
  stats.bump_top_commit();
  stats.bump_top_abort(ConflictKind::kTopLevelValidation);
  stats.bump_top_abort(ConflictKind::kExplicitRetry);
  stats.bump_child_commit();
  stats.bump_child_abort(ConflictKind::kSiblingWrite);
  stats.bump_child_abort(ConflictKind::kStaleReRead);

  const StmStatsSnapshot snap = stats.snapshot();
  EXPECT_EQ(snap.reads, 2u);
  EXPECT_EQ(snap.writes, 1u);
  EXPECT_EQ(snap.top_commits, 1u);
  EXPECT_EQ(snap.top_aborts, 2u);
  EXPECT_EQ(snap.child_commits, 1u);
  EXPECT_EQ(snap.child_aborts, 2u);
  // Kind breakdown partitions the aborts (stale re-reads count as sibling).
  EXPECT_EQ(snap.aborts_validation, 1u);
  EXPECT_EQ(snap.aborts_sibling, 2u);
  EXPECT_EQ(snap.aborts_explicit, 1u);
  EXPECT_EQ(snap.aborts_validation + snap.aborts_sibling + snap.aborts_explicit,
            snap.top_aborts + snap.child_aborts);
  EXPECT_DOUBLE_EQ(snap.top_abort_rate(), 2.0 / 3.0);

  stats.reset();
  EXPECT_EQ(stats.snapshot().reads, 0u);
  EXPECT_EQ(stats.snapshot().top_aborts, 0u);
}

TEST(StmStats, ConcurrentBumpsSumExactly) {
  StmStats stats;
  constexpr int kThreads = 6;
  constexpr int kOps = 10000;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < kOps; ++i) {
          stats.bump_read();
          stats.bump_top_commit();
        }
      });
    }
  }
  const StmStatsSnapshot snap = stats.snapshot();
  EXPECT_EQ(snap.reads, static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_EQ(snap.top_commits, static_cast<std::uint64_t>(kThreads) * kOps);
}

TEST(ContentionProfiler, DisabledNoteIsNoOp) {
  ContentionProfiler profiler;
  VBox<int> box{1};
  profiler.note(&box);
  EXPECT_TRUE(profiler.hotspots().empty());
  EXPECT_EQ(profiler.dropped(), 0u);
}

TEST(ContentionProfiler, CountsAndOrdersHotspots) {
  ContentionProfiler profiler;
  profiler.set_enabled(true);
  VBox<int> a{0};
  a.set_label("a");
  VBox<int> b{0};
  b.set_label("b");
  VBox<int> c{0};  // unlabeled: rendered as a pointer

  for (int i = 0; i < 5; ++i) profiler.note(&b);
  for (int i = 0; i < 2; ++i) profiler.note(&a);
  profiler.note(&c);

  auto hotspots = profiler.hotspots();
  ASSERT_EQ(hotspots.size(), 3u);
  EXPECT_EQ(hotspots[0].label, "b");
  EXPECT_EQ(hotspots[0].conflicts, 5u);
  EXPECT_EQ(hotspots[1].label, "a");
  EXPECT_EQ(hotspots[1].conflicts, 2u);
  EXPECT_EQ(hotspots[2].label.rfind("box@", 0), 0u);

  // top_n truncates after ordering.
  EXPECT_EQ(profiler.hotspots(1).size(), 1u);
  EXPECT_EQ(profiler.hotspots(1)[0].label, "b");

  profiler.reset();
  EXPECT_TRUE(profiler.hotspots().empty());
}

TEST(ContentionProfiler, OverflowIsCountedNotSilent) {
  ContentionProfiler profiler{2};  // rounds to 2 slots
  ASSERT_EQ(profiler.capacity(), 2u);
  profiler.set_enabled(true);
  VBox<int> a{0};
  VBox<int> b{0};
  VBox<int> c{0};
  profiler.note(&a);
  profiler.note(&b);
  profiler.note(&c);  // table full: dropped, visibly
  EXPECT_EQ(profiler.hotspots().size(), 2u);
  EXPECT_EQ(profiler.dropped(), 1u);
  // Known boxes still count after the table fills.
  profiler.note(&a);
  EXPECT_EQ(profiler.hotspots()[0].conflicts, 2u);
  profiler.reset();
  EXPECT_EQ(profiler.dropped(), 0u);
  profiler.note(&c);
  EXPECT_EQ(profiler.hotspots().size(), 1u);
}

TEST(ContentionProfiler, ConcurrentNotesSumExactly) {
  ContentionProfiler profiler;
  profiler.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kNotes = 5000;
  VBox<int> shared{0};
  shared.set_label("shared");
  std::vector<std::unique_ptr<VBox<int>>> privates;
  for (int t = 0; t < kThreads; ++t) {
    privates.push_back(std::make_unique<VBox<int>>(0));
  }
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kNotes; ++i) {
          profiler.note(&shared);
          profiler.note(privates[t].get());
        }
      });
    }
  }
  auto hotspots = profiler.hotspots();
  ASSERT_EQ(hotspots.size(), static_cast<std::size_t>(kThreads) + 1);
  EXPECT_EQ(hotspots[0].label, "shared");
  EXPECT_EQ(hotspots[0].conflicts,
            static_cast<std::uint64_t>(kThreads) * kNotes);
  for (std::size_t i = 1; i < hotspots.size(); ++i) {
    EXPECT_EQ(hotspots[i].conflicts, static_cast<std::uint64_t>(kNotes));
  }
  EXPECT_EQ(profiler.dropped(), 0u);
}

}  // namespace
}  // namespace autopn::stm
