// Multi-threaded correctness: top-level atomicity under contention, snapshot
// isolation invariants, actuator gating, version pruning under load.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "stm/containers.hpp"
#include "stm/stm.hpp"

namespace autopn::stm {
namespace {

StmConfig config(std::size_t top, std::size_t children, std::size_t pool = 2) {
  StmConfig cfg;
  cfg.pool_threads = pool;
  cfg.initial_top = top;
  cfg.initial_children = children;
  return cfg;
}

TEST(StmConcurrency, CounterIncrementsAreAtomic) {
  Stm stm{config(8, 1)};
  VBox<int> counter{0};
  const int threads_n = 8;
  const int increments = 50;
  std::vector<std::jthread> threads;
  threads.reserve(threads_n);
  for (int t = 0; t < threads_n; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < increments; ++i) {
        stm.run_top([&](Tx& tx) { counter.write(tx, counter.read(tx) + 1); });
      }
    });
  }
  threads.clear();
  EXPECT_EQ(counter.peek(), threads_n * increments);
  EXPECT_EQ(stm.stats().top_commits,
            static_cast<std::uint64_t>(threads_n * increments));
}

TEST(StmConcurrency, SnapshotIsolationInvariantHolds) {
  // Writers keep a+b == 100; readers must never observe a torn sum.
  Stm stm{config(6, 1)};
  VBox<int> a{60};
  VBox<int> b{40};
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};

  std::vector<std::jthread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        stm.run_top([&](Tx& tx) {
          const int va = a.read(tx);
          a.write(tx, va - 1);
          b.write(tx, 100 - (va - 1));
        });
      }
    });
  }
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&] {
      while (!stop.load()) {
        stm.run_top([&](Tx& tx) {
          if (a.read(tx) + b.read(tx) != 100) violations.fetch_add(1);
        });
      }
    });
  }
  threads[0].join();
  threads[1].join();
  stop.store(true);
  threads.clear();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(a.peek() + b.peek(), 100);
}

TEST(StmConcurrency, WriteSkewIsPrevented) {
  // Classic write-skew: two transactions each read both boxes and write one.
  // Serializable validation (reads must be unchanged at commit) must abort
  // one interleaved execution, keeping the invariant a + b >= 0.
  Stm stm{config(4, 1)};
  VBox<int> a{1};
  VBox<int> b{1};
  std::vector<std::jthread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&stm, &a, &b, t] {
      for (int i = 0; i < 100; ++i) {
        stm.run_top([&, t](Tx& tx) {
          if (a.read(tx) + b.read(tx) >= 2) {
            if (t == 0) {
              a.write(tx, a.read(tx) - 1);
            } else {
              b.write(tx, b.read(tx) - 1);
            }
          }
        });
      }
    });
  }
  threads.clear();
  EXPECT_GE(a.peek() + b.peek(), 0);
}

TEST(StmConcurrency, AbortsAreCountedUnderContention) {
  Stm stm{config(8, 1)};
  VBox<int> hot{0};
  std::vector<std::jthread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 30; ++i) {
        stm.run_top([&](Tx& tx) {
          const int v = hot.read(tx);
          // Lengthen the vulnerability window a touch.
          std::this_thread::yield();
          hot.write(tx, v + 1);
        });
      }
    });
  }
  threads.clear();
  EXPECT_EQ(hot.peek(), 240);
  // With 8 threads hammering one box, at least some aborts happen; the exact
  // count is scheduling-dependent, so only sanity-check consistency.
  const auto stats = stm.stats();
  EXPECT_EQ(stats.top_commits, 240u);
}

TEST(StmConcurrency, TopGateBoundsConcurrency) {
  Stm stm{config(2, 1)};
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  std::vector<std::jthread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20; ++i) {
        stm.run_top([&](Tx&) {
          const int now = inside.fetch_add(1) + 1;
          int expected = peak.load();
          while (now > expected && !peak.compare_exchange_weak(expected, now)) {
          }
          std::this_thread::yield();
          inside.fetch_sub(1);
        });
      }
    });
  }
  threads.clear();
  EXPECT_LE(peak.load(), 2);
}

TEST(StmConcurrency, RaisingTopGateIncreasesAdmission) {
  Stm stm{config(1, 1)};
  stm.set_top_limit(4);
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  std::vector<std::jthread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10; ++i) {
        stm.run_top([&](Tx&) {
          const int now = inside.fetch_add(1) + 1;
          int expected = peak.load();
          while (now > expected && !peak.compare_exchange_weak(expected, now)) {
          }
          std::this_thread::sleep_for(std::chrono::microseconds{200});
          inside.fetch_sub(1);
        });
      }
    });
  }
  threads.clear();
  EXPECT_LE(peak.load(), 4);
  EXPECT_GE(peak.load(), 2);  // plural admission actually happened
}

TEST(StmConcurrency, LongReaderSeesStableSnapshotDespitePruning) {
  // A long-running reader's snapshot must stay readable while writers commit
  // and pruning reclaims old versions.
  Stm stm{config(4, 1)};
  TArray<int> arr{4, 100};
  std::atomic<bool> reader_started{false};
  std::atomic<bool> writers_done{false};
  int first_sum = -1;
  int second_sum = -1;

  std::jthread reader{[&] {
    stm.run_top([&](Tx& tx) {
      first_sum = arr.read(tx, 0) + arr.read(tx, 1);
      reader_started.store(true);
      while (!writers_done.load()) std::this_thread::yield();
      // Reads from the same snapshot must be consistent with the first ones.
      second_sum = arr.read(tx, 2) + arr.read(tx, 3);
    });
  }};
  while (!reader_started.load()) std::this_thread::yield();
  for (int i = 0; i < 50; ++i) {
    stm.run_top([&](Tx& tx) {
      for (std::size_t j = 0; j < 4; ++j) arr.write(tx, j, i);
    });
  }
  writers_done.store(true);
  reader.join();
  EXPECT_EQ(first_sum, 200);
  EXPECT_EQ(second_sum, 200);  // snapshot versions survived pruning
}

TEST(StmConcurrency, ParallelTreesWithNestedChildren) {
  // Multiple roots each fan out children over disjoint array segments while
  // sharing one hot counter; everything must add up.
  Stm stm{config(4, 4, /*pool=*/4)};
  TArray<int> arr{32, 0};
  VBox<int> total{0};
  std::vector<std::jthread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      stm.run_top([&, t](Tx& tx) {
        std::vector<std::function<void(Tx&)>> kids;
        for (int k = 0; k < 8; ++k) {
          const std::size_t idx = static_cast<std::size_t>(t) * 8 +
                                  static_cast<std::size_t>(k);
          kids.emplace_back([&arr, idx](Tx& child) { arr.write(child, idx, 1); });
        }
        tx.run_children(std::move(kids));
        total.write(tx, total.read(tx) + 8);
      });
    });
  }
  threads.clear();
  EXPECT_EQ(total.peek(), 32);
  int sum = 0;
  for (std::size_t i = 0; i < 32; ++i) sum += arr.peek(i);
  EXPECT_EQ(sum, 32);
}

TEST(StmConcurrency, VersionChainsStayBounded) {
  // Continuous committing with no concurrent readers must not grow chains
  // without bound (pruning at install).
  Stm stm{config(1, 1)};
  VBox<int> box{0};
  for (int i = 0; i < 500; ++i) {
    stm.run_top([&](Tx& tx) { box.write(tx, i); });
  }
  EXPECT_LE(box.chain_length(), 3u);
  EXPECT_EQ(box.peek(), 499);
}

}  // namespace
}  // namespace autopn::stm
