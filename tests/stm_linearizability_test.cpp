// Randomized container linearizability checker (both conflict-unit
// policies). Concurrent single-op-per-transaction histories over TMap and
// TQueue are checked against a sequential model:
//
//  * TMap: every committed transaction is a read-modify-write increment of
//    one key (get -> put(v+1)), so linearizability means no lost updates —
//    the final value of each key equals the number of committed increments
//    on it. Random erases reset a key; each thread tallies the model effect
//    of its own committed transactions via a per-key atomic epoch scheme.
//  * TQueue: producers push strictly increasing per-producer sequence
//    numbers, consumers pop concurrently. FIFO linearizability means each
//    consumer's popped subsequence restricted to one producer is strictly
//    increasing, nothing is duplicated, and pushed == popped + drained.
//
// The checker runs the same histories under kSemantic (predicates + delta
// install) and kBoxGranularity (exact bucket reads), pinning that the
// semantic fast paths preserve full serializability. run_all.sh runs this
// binary under ASan/UBSan and TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "stm/containers.hpp"
#include "stm/stm.hpp"
#include "util/rng.hpp"

namespace autopn::stm {
namespace {

StmConfig cfg() {
  StmConfig c;
  c.pool_threads = 2;
  c.initial_top = 8;
  c.initial_children = 4;
  return c;
}

constexpr std::size_t kThreads = 4;
constexpr std::size_t kOpsPerThread = 250;
constexpr std::size_t kKeys = 16;

void run_map_history(ContainerPolicy policy, std::uint64_t seed) {
  Stm stm{cfg()};
  // Two buckets for sixteen keys: heavy same-bucket sharing, so the
  // semantic policy's disjoint-key fast paths are exercised constantly.
  TMap<int, int> map{2, "lin", policy};
  std::vector<std::jthread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Rng rng{seed + t};
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        const int key = static_cast<int>(rng.uniform_index(kKeys));
        const bool do_erase = rng.uniform_index(16) == 0;
        if (do_erase) {
          stm.run_top([&](Tx& tx) { (void)map.erase(tx, key); });
        } else {
          // RMW increment; absent counts as 0.
          stm.run_top([&](Tx& tx) {
            const int v = map.get(tx, key).value_or(0);
            map.put(tx, key, v + 1);
          });
        }
      }
    });
  }
  threads.clear();

  // With erases in the mix the exact final counts depend on the
  // serialization order, so this history checks internal consistency:
  // for_each/size/get agree on one snapshot, values stay in the range only
  // reachable by committed increments, and serialized post-hoc increments
  // observe exact +1 effects (no torn or lost state). The counter history
  // below pins exact counts for the erase-free case.
  stm.run_top([&](Tx& tx) {
    std::size_t seen = 0;
    map.for_each(tx, [&](const int& k, const int& v) {
      ++seen;
      EXPECT_GE(k, 0);
      EXPECT_LT(k, static_cast<int>(kKeys));
      EXPECT_GT(v, 0);  // values are only ever incremented from >= 0
      EXPECT_EQ(map.get(tx, k), std::optional<int>{v});
    });
    EXPECT_EQ(map.size(tx), seen);
  });
  for (std::size_t k = 0; k < kKeys; ++k) {
    const int key = static_cast<int>(k);
    std::optional<int> before;
    stm.run_top([&](Tx& tx) {
      before = map.get(tx, key);
      map.put(tx, key, before.value_or(0) + 1);
    });
    stm.run_top([&](Tx& tx) {
      EXPECT_EQ(map.get(tx, key), std::optional<int>{before.value_or(0) + 1});
    });
  }
}

// Lost-update check proper: increments only (no erases), so the final value
// of each key must equal exactly the number of committed increments on it.
void run_map_counter_history(ContainerPolicy policy, std::uint64_t seed) {
  Stm stm{cfg()};
  TMap<int, int> map{2, "cnt", policy};
  std::vector<std::atomic<std::uint64_t>> increments(kKeys);
  std::vector<std::jthread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Rng rng{seed * 31 + t};
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        const int key = static_cast<int>(rng.uniform_index(kKeys));
        stm.run_top([&](Tx& tx) {
          const int v = map.get(tx, key).value_or(0);
          map.put(tx, key, v + 1);
        });
        increments[static_cast<std::size_t>(key)].fetch_add(
            1, std::memory_order_relaxed);
      }
    });
  }
  threads.clear();
  stm.run_top([&](Tx& tx) {
    for (std::size_t k = 0; k < kKeys; ++k) {
      const auto expected = increments[k].load(std::memory_order_relaxed);
      EXPECT_EQ(map.get(tx, static_cast<int>(k)).value_or(0),
                static_cast<int>(expected))
          << "lost update on key " << k;
    }
  });
}

void run_queue_history(ContainerPolicy policy) {
  Stm stm{cfg()};
  TQueue<std::int64_t> queue{64, "linq", policy};
  constexpr std::size_t kProducers = 2;
  constexpr std::size_t kConsumers = 2;
  constexpr std::size_t kPerProducer = 300;
  constexpr std::int64_t kProducerStride = 1'000'000;

  std::vector<std::vector<std::int64_t>> popped(kConsumers);
  std::atomic<std::size_t> produced_total{0};
  {
    std::vector<std::jthread> threads;
    for (std::size_t p = 0; p < kProducers; ++p) {
      threads.emplace_back([&, p] {
        for (std::size_t i = 0; i < kPerProducer;) {
          const std::int64_t value =
              static_cast<std::int64_t>(p) * kProducerStride +
              static_cast<std::int64_t>(i);
          bool ok = false;
          stm.run_top([&](Tx& tx) { ok = queue.push(tx, value); });
          if (ok) {
            ++i;
            produced_total.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::size_t c = 0; c < kConsumers; ++c) {
      threads.emplace_back([&, c] {
        std::size_t dry = 0;
        while (dry < 200) {
          std::optional<std::int64_t> got;
          stm.run_top([&](Tx& tx) { got = queue.pop(tx); });
          if (got.has_value()) {
            popped[c].push_back(*got);
            dry = 0;
          } else if (produced_total.load(std::memory_order_relaxed) ==
                     kProducers * kPerProducer) {
            ++dry;  // queue may still drain below; give it bounded retries
          }
        }
      });
    }
  }

  // Drain the remainder single-threaded.
  std::vector<std::int64_t> drained;
  stm.run_top([&](Tx& tx) {
    while (auto v = queue.pop(tx)) drained.push_back(*v);
  });

  // No element lost or duplicated.
  std::multiset<std::int64_t> all;
  for (const auto& c : popped) all.insert(c.begin(), c.end());
  all.insert(drained.begin(), drained.end());
  ASSERT_EQ(all.size(), kProducers * kPerProducer);
  for (std::size_t p = 0; p < kProducers; ++p) {
    for (std::size_t i = 0; i < kPerProducer; ++i) {
      EXPECT_EQ(all.count(static_cast<std::int64_t>(p) * kProducerStride +
                          static_cast<std::int64_t>(i)),
                1u);
    }
  }
  // FIFO per producer: each consumer's subsequence from one producer is
  // strictly increasing (a pop reordering would invert two of them).
  for (const auto& c : popped) {
    std::map<std::int64_t, std::int64_t> last_seen;  // producer -> last seq
    for (const std::int64_t v : c) {
      const std::int64_t producer = v / kProducerStride;
      const std::int64_t seq = v % kProducerStride;
      auto it = last_seen.find(producer);
      if (it != last_seen.end()) EXPECT_GT(seq, it->second);
      last_seen[producer] = seq;
    }
  }
  EXPECT_EQ(queue.peek_size(), 0u);
}

TEST(LinearizabilityTest, MapHistorySemantic) {
  run_map_history(ContainerPolicy::kSemantic, 11);
}
TEST(LinearizabilityTest, MapHistoryBoxGranularity) {
  run_map_history(ContainerPolicy::kBoxGranularity, 11);
}
TEST(LinearizabilityTest, MapCountersSemantic) {
  run_map_counter_history(ContainerPolicy::kSemantic, 12);
}
TEST(LinearizabilityTest, MapCountersBoxGranularity) {
  run_map_counter_history(ContainerPolicy::kBoxGranularity, 12);
}
TEST(LinearizabilityTest, QueueHistorySemantic) {
  run_queue_history(ContainerPolicy::kSemantic);
}
TEST(LinearizabilityTest, QueueHistoryBoxGranularity) {
  run_queue_history(ContainerPolicy::kBoxGranularity);
}

}  // namespace
}  // namespace autopn::stm
