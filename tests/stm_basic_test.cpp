// Single-threaded semantics of the multi-version STM: versioned boxes,
// read-your-writes, snapshot isolation, commit/abort, statistics.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "stm/stm.hpp"

namespace autopn::stm {
namespace {

StmConfig small_config() {
  StmConfig cfg;
  cfg.pool_threads = 2;
  cfg.initial_top = 4;
  cfg.initial_children = 4;
  return cfg;
}

TEST(VBoxTest, InitialValueVisible) {
  VBox<int> box{42};
  EXPECT_EQ(box.peek(), 42);
  EXPECT_EQ(box.newest_version(), 0u);
}

TEST(VBoxTest, BodyAtSelectsVersion) {
  VBox<int> box{1};
  box.install(std::make_shared<const int>(2), 5, 0);
  box.install(std::make_shared<const int>(3), 9, 0);
  EXPECT_EQ(*static_cast<const int*>(box.body_at(0)->value.read().get()), 1);
  EXPECT_EQ(*static_cast<const int*>(box.body_at(5)->value.read().get()), 2);
  EXPECT_EQ(*static_cast<const int*>(box.body_at(7)->value.read().get()), 2);
  EXPECT_EQ(*static_cast<const int*>(box.body_at(100)->value.read().get()), 3);
  EXPECT_EQ(box.newest_version(), 9u);
}

TEST(VBoxTest, PruneKeepsReachableBodies) {
  VBox<int> box{0};
  // min_active_snapshot = 4: versions 1..4 are only reachable via the newest
  // body <= 4.
  box.install(std::make_shared<const int>(1), 1, 0);
  box.install(std::make_shared<const int>(2), 2, 0);
  box.install(std::make_shared<const int>(3), 3, 0);
  EXPECT_EQ(box.chain_length(), 4u);
  box.install(std::make_shared<const int>(4), 4, 3);
  // Bodies with version < 3 are gone except the newest <= 3.
  EXPECT_EQ(box.chain_length(), 2u);
  EXPECT_EQ(*static_cast<const int*>(box.body_at(3)->value.read().get()), 3);
}

TEST(VBoxTest, PruneAllWhenNoReaders) {
  VBox<int> box{0};
  for (int i = 1; i <= 10; ++i) {
    box.install(std::make_shared<const int>(i), static_cast<std::uint64_t>(i),
                static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(box.chain_length(), 1u);
  EXPECT_EQ(box.peek(), 10);
}

TEST(StmBasic, ReadInitialValue) {
  Stm stm{small_config()};
  VBox<int> box{7};
  int seen = 0;
  stm.run_top([&](Tx& tx) { seen = box.read(tx); });
  EXPECT_EQ(seen, 7);
}

TEST(StmBasic, WriteCommitsAndBumpsClock) {
  Stm stm{small_config()};
  VBox<int> box{0};
  EXPECT_EQ(stm.clock(), 0u);
  stm.run_top([&](Tx& tx) { box.write(tx, 5); });
  EXPECT_EQ(box.peek(), 5);
  EXPECT_EQ(stm.clock(), 1u);
}

TEST(StmBasic, ReadYourOwnWrite) {
  Stm stm{small_config()};
  VBox<int> box{1};
  stm.run_top([&](Tx& tx) {
    box.write(tx, 10);
    EXPECT_EQ(box.read(tx), 10);
    box.write(tx, 20);
    EXPECT_EQ(box.read(tx), 20);
  });
  EXPECT_EQ(box.peek(), 20);
}

TEST(StmBasic, RepeatableReads) {
  Stm stm{small_config()};
  VBox<int> box{3};
  stm.run_top([&](Tx& tx) {
    EXPECT_EQ(box.read(tx), 3);
    EXPECT_EQ(box.read(tx), 3);
    EXPECT_EQ(tx.read_set_size(), 1u);  // cached, not re-recorded
  });
}

TEST(StmBasic, ReadOnlyTxDoesNotBumpClock) {
  Stm stm{small_config()};
  VBox<int> box{1};
  stm.run_top([&](Tx& tx) { (void)box.read(tx); });
  EXPECT_EQ(stm.clock(), 0u);
}

TEST(StmBasic, UserExceptionAbortsAndPropagates) {
  Stm stm{small_config()};
  VBox<int> box{0};
  EXPECT_THROW(stm.run_top([&](Tx& tx) {
    box.write(tx, 99);
    throw std::runtime_error{"boom"};
  }),
               std::runtime_error);
  EXPECT_EQ(box.peek(), 0);  // write discarded
  EXPECT_EQ(stm.stats().top_commits, 0u);
}

TEST(StmBasic, RunTopReturningValue) {
  Stm stm{small_config()};
  VBox<int> box{21};
  const int doubled =
      stm.run_top_returning<int>([&](Tx& tx) { return 2 * box.read(tx); });
  EXPECT_EQ(doubled, 42);
}

TEST(StmBasic, ReturningApisAcceptNonDefaultConstructibleTypes) {
  // run_top_returning/read_only buffer the body's result in std::optional, so
  // T needs neither a default constructor nor copy assignment.
  struct Opaque {
    explicit Opaque(int v) : value(v) {}
    Opaque(const Opaque&) = delete;
    Opaque(Opaque&&) = default;
    int value;
  };
  static_assert(!std::is_default_constructible_v<Opaque>);

  Stm stm{small_config()};
  VBox<int> box{21};
  const Opaque doubled = stm.run_top_returning<Opaque>(
      [&](Tx& tx) { return Opaque{2 * box.read(tx)}; });
  EXPECT_EQ(doubled.value, 42);

  const Opaque observed =
      stm.read_only<Opaque>([&](Tx& tx) { return Opaque{box.read(tx)}; });
  EXPECT_EQ(observed.value, 21);
}

TEST(StmBasic, SequentialTransactionsSeeEachOther) {
  Stm stm{small_config()};
  VBox<int> box{0};
  for (int i = 1; i <= 10; ++i) {
    stm.run_top([&](Tx& tx) { box.write(tx, box.read(tx) + 1); });
  }
  EXPECT_EQ(box.peek(), 10);
  EXPECT_EQ(stm.stats().top_commits, 10u);
  EXPECT_EQ(stm.stats().top_aborts, 0u);
}

TEST(StmBasic, StatsCountReadsWrites) {
  Stm stm{small_config()};
  VBox<int> a{0};
  VBox<int> b{0};
  stm.run_top([&](Tx& tx) {
    (void)a.read(tx);
    (void)b.read(tx);
    a.write(tx, 1);
  });
  const auto stats = stm.stats();
  EXPECT_EQ(stats.reads, 2u);
  EXPECT_EQ(stats.writes, 1u);
  stm.reset_stats();
  EXPECT_EQ(stm.stats().reads, 0u);
}

TEST(StmBasic, ReadUninitializedBoxThrowsLogicError) {
  Stm stm{small_config()};
  VBox<int> box;  // never put_initial
  EXPECT_THROW(stm.run_top([&](Tx& tx) { (void)box.read(tx); }), std::logic_error);
}

TEST(StmBasic, StringValues) {
  Stm stm{small_config()};
  VBox<std::string> box{std::string{"hello"}};
  stm.run_top([&](Tx& tx) { box.write(tx, box.read(tx) + " world"); });
  EXPECT_EQ(box.peek(), "hello world");
}

TEST(StmBasic, CommitCallbackFires) {
  Stm stm{small_config()};
  VBox<int> box{0};
  int calls = 0;
  stm.set_commit_callback(
      std::make_shared<const std::function<void()>>([&calls] { ++calls; }));
  stm.run_top([&](Tx& tx) { box.write(tx, 1); });
  stm.run_top([&](Tx& tx) { (void)box.read(tx); });
  EXPECT_EQ(calls, 2);
  stm.set_commit_callback(nullptr);
  stm.run_top([&](Tx& tx) { box.write(tx, 2); });
  EXPECT_EQ(calls, 2);
}

TEST(StmBasic, ActuatorLimitsQueryable) {
  StmConfig cfg = small_config();
  cfg.initial_top = 3;
  cfg.initial_children = 5;
  Stm stm{cfg};
  EXPECT_EQ(stm.top_limit(), 3u);
  EXPECT_EQ(stm.child_limit(), 5u);
  stm.set_top_limit(8);
  stm.set_child_limit(2);
  EXPECT_EQ(stm.top_limit(), 8u);
  EXPECT_EQ(stm.child_limit(), 2u);
  // Limits clamp to >= 1.
  stm.set_top_limit(0);
  stm.set_child_limit(0);
  EXPECT_EQ(stm.top_limit(), 1u);
  EXPECT_EQ(stm.child_limit(), 1u);
}

TEST(StmBasic, ExplicitRetryIsCountedAsAbort) {
  Stm stm{small_config()};
  VBox<int> box{0};
  int attempts = 0;
  stm.run_top([&](Tx& tx) {
    ++attempts;
    box.write(tx, attempts);
    if (attempts < 3) tx.retry();
  });
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(box.peek(), 3);
  EXPECT_EQ(stm.stats().top_aborts, 2u);
  EXPECT_EQ(stm.stats().top_commits, 1u);
}

TEST(StmBasic, AbortBreakdownByKind) {
  Stm stm{small_config()};
  VBox<int> box{0};
  // Explicit retries are attributed to the explicit counter.
  int attempts = 0;
  stm.run_top([&](Tx& tx) {
    box.write(tx, 1);
    if (++attempts < 3) tx.retry();
  });
  const auto stats = stm.stats();
  EXPECT_EQ(stats.aborts_explicit, 2u);
  EXPECT_EQ(stats.aborts_validation, 0u);
  EXPECT_EQ(stats.aborts_sibling, 0u);
  EXPECT_EQ(stats.top_aborts,
            stats.aborts_validation + stats.aborts_sibling + stats.aborts_explicit);
}

TEST(StmBasic, SiblingAbortsAttributedToSiblingCounter) {
  StmConfig cfg = small_config();
  cfg.initial_children = 4;
  Stm stm{cfg};
  VBox<int> hot{0};
  stm.run_top([&](Tx& tx) {
    std::vector<std::function<void(Tx&)>> kids;
    for (int k = 0; k < 8; ++k) {
      kids.emplace_back([&](Tx& child) { hot.write(child, hot.read(child) + 1); });
    }
    tx.run_children(std::move(kids));
  });
  const auto stats = stm.stats();
  EXPECT_EQ(stats.child_aborts, stats.aborts_sibling);
  EXPECT_EQ(stats.aborts_validation, 0u);
}

TEST(StmBasic, ContentionProfilerNamesHotBox) {
  StmConfig cfg = small_config();
  cfg.initial_top = 4;
  Stm stm{cfg};
  VBox<int> hot{0};
  hot.set_label("hot-counter");
  VBox<int> cold{0};
  stm.set_contention_profiling(true);

  std::vector<std::jthread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        stm.run_top([&](Tx& tx) {
          const int v = hot.read(tx);
          std::this_thread::yield();
          hot.write(tx, v + 1);
        });
      }
    });
  }
  threads.clear();
  ASSERT_GT(stm.stats().aborts_validation, 0u);
  const auto hotspots = stm.contention_hotspots(3);
  ASSERT_FALSE(hotspots.empty());
  EXPECT_EQ(hotspots[0].label, "hot-counter");
  EXPECT_GT(hotspots[0].conflicts, 0u);

  stm.reset_contention_profile();
  EXPECT_TRUE(stm.contention_hotspots().empty());
}

TEST(StmBasic, ProfilerOffRecordsNothing) {
  StmConfig cfg = small_config();
  cfg.initial_top = 4;
  Stm stm{cfg};
  VBox<int> hot{0};
  std::vector<std::jthread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 30; ++i) {
        stm.run_top([&](Tx& tx) { hot.write(tx, hot.read(tx) + 1); });
      }
    });
  }
  threads.clear();
  EXPECT_TRUE(stm.contention_hotspots().empty());
}

TEST(StmBasic, UnlabeledHotspotRendersPointer) {
  StmConfig cfg = small_config();
  cfg.initial_top = 4;
  Stm stm{cfg};
  VBox<int> hot{0};
  stm.set_contention_profiling(true);
  std::vector<std::jthread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        stm.run_top([&](Tx& tx) {
          const int v = hot.read(tx);
          std::this_thread::yield();
          hot.write(tx, v + 1);
        });
      }
    });
  }
  threads.clear();
  const auto hotspots = stm.contention_hotspots();
  ASSERT_FALSE(hotspots.empty());
  EXPECT_EQ(hotspots[0].label.rfind("box@", 0), 0u);
}

TEST(StmBasic, ReadOnlyFastPath) {
  Stm stm{small_config()};
  VBox<int> a{10};
  VBox<int> b{32};
  const int sum =
      stm.read_only<int>([&](Tx& tx) { return a.read(tx) + b.read(tx); });
  EXPECT_EQ(sum, 42);
  EXPECT_EQ(stm.stats().top_commits, 1u);
  EXPECT_EQ(stm.stats().top_aborts, 0u);
}

TEST(StmBasic, ReadOnlyRejectsWrites) {
  Stm stm{small_config()};
  VBox<int> box{1};
  EXPECT_THROW((void)stm.read_only<int>([&](Tx& tx) {
    box.write(tx, 2);
    return 0;
  }),
               std::logic_error);
  EXPECT_EQ(box.peek(), 1);
}

TEST(StmBasic, ReadOnlyChildrenMayRead) {
  Stm stm{small_config()};
  VBox<int> box{7};
  const int value = stm.read_only<int>([&](Tx& tx) {
    int seen = 0;
    tx.run_children({[&](Tx& child) { seen = box.read(child); }});
    return seen;
  });
  EXPECT_EQ(value, 7);
}

TEST(StmBasic, ReadOnlyChildWriteRejected) {
  Stm stm{small_config()};
  VBox<int> box{1};
  EXPECT_THROW((void)stm.read_only<int>([&](Tx& tx) {
    tx.run_children({[&](Tx& child) { box.write(child, 9); }});
    return 0;
  }),
               std::logic_error);
  EXPECT_EQ(box.peek(), 1);
}

TEST(StmBasic, WriteSetSizeTracksDistinctBoxes) {
  Stm stm{small_config()};
  VBox<int> a{0};
  VBox<int> b{0};
  stm.run_top([&](Tx& tx) {
    a.write(tx, 1);
    a.write(tx, 2);
    b.write(tx, 3);
    EXPECT_EQ(tx.write_set_size(), 2u);
    EXPECT_TRUE(tx.is_top_level());
    EXPECT_EQ(tx.depth(), 0);
  });
}

}  // namespace
}  // namespace autopn::stm
