// NetServer end-to-end tests over loopback: request/response round-trips
// through the real engine, per-tenant latency surfacing, shed responses with
// clamped retry-after hints, client deadlines expiring on the wire, slow-
// reader backpressure, mid-request disconnects, and the deterministic
// shutdown ledger (requests_decoded == responses_enqueued ==
// responses_written + responses_dropped).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/netload.hpp"
#include "net/server.hpp"
#include "serve/engine.hpp"
#include "stm/stm.hpp"
#include "util/clock.hpp"

namespace autopn::net {
namespace {

using namespace std::chrono_literals;

stm::StmConfig small_stm() {
  stm::StmConfig cfg;
  cfg.max_cores = 4;
  cfg.pool_threads = 2;
  cfg.initial_top = 2;
  cfg.initial_children = 1;
  return cfg;
}

void expect_ledger_exact(const NetServerReport& report) {
  EXPECT_EQ(report.requests_decoded, report.responses_enqueued);
  EXPECT_EQ(report.responses_enqueued,
            report.responses_written + report.responses_dropped);
}

/// Engine + server + loopback client harness with a trivial default handler.
struct Harness {
  explicit Harness(serve::ServeConfig serve_cfg = {},
                   NetServerConfig net_cfg = {},
                   NetServer::HandlerTable handlers = {})
      : stm(small_stm()),
        engine(stm, [](util::Rng&) {}, clock, serve_cfg),
        server(engine, std::move(handlers), net_cfg) {}

  util::WallClock clock;
  stm::Stm stm;
  serve::ServeEngine engine;
  NetServer server;

  Client connect() { return Client::connect("127.0.0.1", server.port()); }
};

TEST(NetServer, RequestResponseRoundTrip) {
  Harness h;
  auto client = h.connect();
  const auto response = client.call(/*handler_id=*/0, /*tenant_id=*/3);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, Status::kOk);
  EXPECT_GT(response->server_latency_us, 0u);

  h.server.shutdown();
  const auto report = h.server.report();
  EXPECT_EQ(report.accepted, 1u);
  EXPECT_EQ(report.requests_decoded, 1u);
  EXPECT_EQ(report.responses_written, 1u);
  expect_ledger_exact(report);
  // The request's tenant landed in the engine's per-tenant latency report.
  const auto engine_report = h.engine.report();
  ASSERT_EQ(engine_report.tenants.size(), 1u);
  EXPECT_EQ(engine_report.tenants[0].tenant, 3u);
  EXPECT_EQ(engine_report.tenants[0].latency.count, 1u);
}

TEST(NetServer, PipelinedRequestsAllAnswered) {
  serve::ServeConfig cfg;
  cfg.workers = 4;
  cfg.queue_capacity = 2048;
  Harness h{cfg};
  auto client = h.connect();
  constexpr int kRequests = 200;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(client.send(0, static_cast<std::uint16_t>(i % 4)).has_value());
  }
  int answered = 0;
  while (answered < kRequests) {
    const auto response = client.recv(5.0);
    ASSERT_TRUE(response.has_value()) << "after " << answered << " responses";
    EXPECT_EQ(response->status, Status::kOk);
    ++answered;
  }
  h.server.shutdown();
  const auto report = h.server.report();
  EXPECT_EQ(report.requests_decoded, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(report.responses_written, static_cast<std::uint64_t>(kRequests));
  expect_ledger_exact(report);
  // Round-robined tenants each show up in the per-tenant report.
  EXPECT_EQ(h.engine.report().tenants.size(), 4u);
}

TEST(NetServer, ShedResponseCarriesClampedRetryAfter) {
  serve::ServeConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 4;
  cfg.shed_watermark = 2;
  Harness h{cfg, {},
            {[](util::Rng&) { std::this_thread::sleep_for(20ms); }}};
  auto client = h.connect();
  // Flood far past the watermark: some requests must be shed.
  constexpr int kRequests = 32;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(client.send(0).has_value());
  }
  int ok = 0;
  int shed = 0;
  for (int i = 0; i < kRequests; ++i) {
    const auto response = client.recv(10.0);
    ASSERT_TRUE(response.has_value());
    if (response->status == Status::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(response->status, Status::kShed);
      ++shed;
      // The protocol-level hint honors the engine's [1 ms, 5 s] clamp.
      EXPECT_GE(response->retry_after_us, 1000u);
      EXPECT_LE(response->retry_after_us, 5000000u);
    }
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(shed, 0);
  h.server.shutdown();
  const auto report = h.server.report();
  EXPECT_EQ(report.shed_responses, static_cast<std::uint64_t>(shed));
  expect_ledger_exact(report);
}

TEST(NetServer, UnknownHandlerIdRejectedWithoutTouchingEngine) {
  Harness h{{}, {}, {[](util::Rng&) {}}};  // table exposes only id 0
  auto client = h.connect();
  const auto response = client.call(/*handler_id=*/9);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, Status::kRejected);
  EXPECT_EQ(h.engine.report().offered, 0u);
  h.server.shutdown();
  expect_ledger_exact(h.server.report());
}

TEST(NetServer, ClientDeadlineExpiresOnTheWire) {
  serve::ServeConfig cfg;
  cfg.workers = 1;
  Harness h{cfg, {},
            {[](util::Rng&) { std::this_thread::sleep_for(30ms); }}};
  auto client = h.connect();
  // First request occupies the single worker; the second's 1 ms deadline is
  // long past when it reaches the front of the queue.
  ASSERT_TRUE(client.send(0).has_value());
  ASSERT_TRUE(client.send(0, 0, /*deadline_us=*/1000).has_value());
  int expired = 0;
  for (int i = 0; i < 2; ++i) {
    const auto response = client.recv(10.0);
    ASSERT_TRUE(response.has_value());
    if (response->status == Status::kExpired) ++expired;
  }
  EXPECT_EQ(expired, 1);
  h.server.shutdown();
  expect_ledger_exact(h.server.report());
}

TEST(NetServer, MidRequestDisconnectCountsDroppedResponse) {
  serve::ServeConfig cfg;
  cfg.workers = 1;
  Harness h{cfg, {},
            {[](util::Rng&) { std::this_thread::sleep_for(50ms); }}};
  {
    auto client = h.connect();
    ASSERT_TRUE(client.send(0).has_value());
    std::this_thread::sleep_for(10ms);  // let the server decode + admit it
  }  // client destructor closes the socket while the handler still runs
  h.server.shutdown();
  const auto report = h.server.report();
  EXPECT_EQ(report.requests_decoded, 1u);
  EXPECT_EQ(report.responses_dropped, 1u);
  EXPECT_EQ(report.responses_written, 0u);
  expect_ledger_exact(report);
  // The engine still completed the request — nothing leaked or crashed.
  EXPECT_EQ(h.engine.report().completed, 1u);
}

TEST(NetServer, SlowReaderTriggersBackpressureThenRecovers) {
  serve::ServeConfig serve_cfg;
  serve_cfg.workers = 2;
  serve_cfg.queue_capacity = 8192;
  serve_cfg.shed_watermark = 8192;
  NetServerConfig net_cfg;
  net_cfg.max_outbound_bytes = 2048;  // tiny cap: a few KB of responses fill it
  net_cfg.so_sndbuf = 4096;  // shrink kernel buffering so the cap is reachable
  Harness h{serve_cfg, net_cfg};

  // Raw slow-reader client: a minimal receive buffer (set before connect so
  // the TCP window is small) and no reads until the burst is fully sent.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  const int tiny = 2048;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof tiny);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(h.server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);

  std::vector<std::uint8_t> burst;
  encode_hello(burst);
  constexpr int kRequests = 2000;
  for (int i = 0; i < kRequests; ++i) {
    RequestFrame frame;
    frame.request_id = static_cast<std::uint64_t>(i) + 1;
    encode_request(burst, frame);
  }
  std::size_t sent = 0;
  while (sent < burst.size()) {
    const ssize_t n =
        ::send(fd, burst.data() + sent, burst.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }

  // Responses pile up: client rcvbuf → server sndbuf → server outbuf past the
  // cap → the server must pause reading rather than balloon memory.
  const auto pause_deadline = std::chrono::steady_clock::now() + 10s;
  while (h.server.report().backpressure_pauses == 0 &&
         std::chrono::steady_clock::now() < pause_deadline) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_GT(h.server.report().backpressure_pauses, 0u);

  // Start reading: the buffer drains, reads resume, every request answers.
  FrameDecoder decoder;
  int responses = 0;
  bool saw_ack = false;
  const auto read_deadline = std::chrono::steady_clock::now() + 30s;
  while (responses < kRequests) {
    ASSERT_LT(std::chrono::steady_clock::now(), read_deadline)
        << "stalled after " << responses << " responses";
    std::uint8_t buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    ASSERT_GT(n, 0) << "connection died after " << responses << " responses";
    decoder.feed(buf, static_cast<std::size_t>(n));
    while (auto frame = decoder.next()) {
      if (frame->type == FrameType::kHelloAck) {
        saw_ack = true;
      } else if (frame->type == FrameType::kResponse) {
        ++responses;
      }
    }
    ASSERT_FALSE(decoder.failed()) << decoder.error();
  }
  EXPECT_TRUE(saw_ack);
  ::close(fd);

  h.server.shutdown();
  const auto report = h.server.report();
  EXPECT_GT(report.backpressure_pauses, 0u);
  EXPECT_EQ(report.requests_decoded, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(report.responses_written, static_cast<std::uint64_t>(kRequests));
  expect_ledger_exact(report);
}

/// Raw TCP socket for driving malformed bytes at the server.
int raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  return fd;
}

/// True when the peer closes the connection within ~2 s.
bool peer_closes(int fd) {
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  char buf[256];
  while (std::chrono::steady_clock::now() < deadline) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, MSG_DONTWAIT);
    if (n == 0) return true;                       // orderly close
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) return true;
    std::this_thread::sleep_for(5ms);
  }
  return false;
}

TEST(NetServer, GarbageBytesCloseConnectionAsProtocolError) {
  Harness h;
  // Handshake properly, then send a frame with an unknown type tag
  // (length=1, type=0x7f): the server must close, not resync.
  const int fd = raw_connect(h.server.port());
  std::vector<std::uint8_t> bytes;
  encode_hello(bytes);
  const std::uint8_t garbage[5] = {1, 0, 0, 0, 0x7f};
  bytes.insert(bytes.end(), std::begin(garbage), std::end(garbage));
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size()));
  EXPECT_TRUE(peer_closes(fd));
  ::close(fd);
  h.server.shutdown();
  const auto report = h.server.report();
  EXPECT_GE(report.protocol_errors, 1u);
  expect_ledger_exact(report);
}

TEST(NetServer, NonHelloFirstFrameIsAProtocolError) {
  Harness h;
  const int fd = raw_connect(h.server.port());
  std::vector<std::uint8_t> bytes;
  encode_request(bytes, RequestFrame{});  // request before the handshake
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size()));
  EXPECT_TRUE(peer_closes(fd));
  ::close(fd);
  h.server.shutdown();
  const auto report = h.server.report();
  EXPECT_GE(report.protocol_errors, 1u);
  EXPECT_EQ(report.requests_decoded, 0u);
  expect_ledger_exact(report);
}

TEST(NetServer, ShutdownIsIdempotentAndDestructorSafe) {
  Harness h;
  auto client = h.connect();
  ASSERT_TRUE(client.call().has_value());
  h.server.shutdown();
  h.server.shutdown();  // second call is a no-op
  expect_ledger_exact(h.server.report());
  // New connections are refused after shutdown.
  EXPECT_THROW(Client::connect("127.0.0.1", h.server.port(), 0.5),
               std::exception);
}

TEST(NetServer, NetloadOpenLoopSustainsTraffic) {
  serve::ServeConfig cfg;
  cfg.workers = 4;
  cfg.queue_capacity = 4096;
  Harness h{cfg};
  NetLoadParams params;
  params.port = h.server.port();
  params.connections = 2;
  params.rate = 400.0;
  params.duration = 0.5;
  params.tenants = 2;
  params.payload_bytes = 64;
  const auto result = run_netload(params);
  EXPECT_GT(result.sent, 0u);
  EXPECT_GT(result.ok, 0u);
  EXPECT_EQ(result.answered() + result.unanswered, result.sent);
  EXPECT_GT(result.latency.count, 0u);
  h.server.shutdown();
  expect_ledger_exact(h.server.report());
}

TEST(NetServer, LegacyMinorZeroClientInteroperates) {
  // A v1.0 peer sends the short hello and expects byte-identical v1.0
  // frames back: short ack, responses without the shed-origin byte. Drive
  // the handshake with raw sockets so the modern Client's own negotiation
  // cannot mask a server-side regression.
  Harness h;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(h.server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);

  std::vector<std::uint8_t> out;
  HelloFrame hello;
  hello.minor = 0;  // the legacy short form
  encode_hello(out, hello);
  RequestFrame request;
  request.request_id = 77;
  encode_request(out, request);
  ASSERT_EQ(::send(fd, out.data(), out.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(out.size()));

  FrameDecoder decoder;
  std::optional<HelloAckFrame> ack;
  std::optional<ResponseFrame> response;
  std::size_t response_body_size = 0;
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while ((!ack || !response) && std::chrono::steady_clock::now() < deadline) {
    std::uint8_t buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    decoder.feed(buf, static_cast<std::size_t>(n));
    while (auto frame = decoder.next()) {
      if (frame->type == FrameType::kHelloAck) {
        ack = parse_hello_ack(frame->body);
        EXPECT_EQ(frame->body.size(), 7u) << "legacy peers need the short ack";
      } else if (frame->type == FrameType::kResponse) {
        response_body_size = frame->body.size();
        response = parse_response(frame->body);
      }
    }
  }
  ::close(fd);
  ASSERT_TRUE(ack.has_value());
  EXPECT_TRUE(ack->ok);
  EXPECT_EQ(ack->minor, 0u);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->request_id, 77u);
  EXPECT_EQ(response->status, Status::kOk);
  // v1.0 response layout: fixed fields + empty payload, no origin byte.
  EXPECT_EQ(response_body_size, 8u + 1u + 8u + 8u + 4u);

  h.server.shutdown();
  expect_ledger_exact(h.server.report());
}

TEST(NetServer, StatsRequestServesEngineKpis) {
  Harness h;
  auto client = h.connect();
  ASSERT_EQ(client.wire_minor(), kWireMinor);
  ASSERT_TRUE(client.call(/*handler_id=*/0, /*tenant_id=*/5).has_value());
  ASSERT_TRUE(client.send_stats_request());
  const auto stats = client.poll_stats(5.0);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->offered, 1u);
  EXPECT_EQ(stats->completed, 1u);
  ASSERT_EQ(stats->tenants.size(), 1u);
  EXPECT_EQ(stats->tenants[0].tenant, 5u);  // slot index: 5 % 8
  EXPECT_EQ(stats->tenants[0].count, 1u);
  // Stats traffic rides outside the request/response ledger.
  h.server.shutdown();
  const auto report = h.server.report();
  EXPECT_EQ(report.requests_decoded, 1u);
  expect_ledger_exact(report);
}

TEST(NetServer, NetloadClosedLoopHonorsRetryAfter) {
  serve::ServeConfig cfg;
  cfg.workers = 2;
  Harness h{cfg};
  NetLoadParams params;
  params.port = h.server.port();
  params.connections = 4;
  params.closed_loop = true;
  params.think_time = 0.0;
  params.duration = 0.3;
  const auto result = run_netload(params);
  EXPECT_GT(result.ok, 0u);
  EXPECT_EQ(result.io_errors, 0u);
  h.server.shutdown();
  expect_ledger_exact(h.server.report());
}

}  // namespace
}  // namespace autopn::net
