// Tests comparing the two top-level commit strategies: global-lock and the
// JVSTM-style lock-free helping protocol. Every invariant must hold under
// both; the sweep runs the same contention patterns against each.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "stm/containers.hpp"
#include "stm/stm.hpp"

namespace autopn::stm {
namespace {

class CommitStrategyTest : public ::testing::TestWithParam<CommitStrategy> {
 protected:
  StmConfig config(std::size_t top, std::size_t children = 1,
                   std::size_t pool = 2) const {
    StmConfig cfg;
    cfg.initial_top = top;
    cfg.initial_children = children;
    cfg.pool_threads = pool;
    cfg.commit_strategy = GetParam();
    return cfg;
  }
};

TEST_P(CommitStrategyTest, SequentialCommitsBumpClockByOne) {
  Stm stm{config(1)};
  VBox<int> box{0};
  for (int i = 1; i <= 20; ++i) {
    stm.run_top([&](Tx& tx) { box.write(tx, i); });
    EXPECT_EQ(stm.clock(), static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(box.peek(), 20);
}

TEST_P(CommitStrategyTest, ConcurrentIncrementsAreExact) {
  Stm stm{config(8)};
  VBox<long> counter{0L};
  std::vector<std::jthread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 40; ++i) {
        stm.run_top([&](Tx& tx) { counter.write(tx, counter.read(tx) + 1); });
      }
    });
  }
  threads.clear();
  EXPECT_EQ(counter.peek(), 320L);
  // Versions are dense: every commit claimed exactly one version.
  EXPECT_EQ(stm.clock(), stm.stats().top_commits);
}

TEST_P(CommitStrategyTest, DisjointWritersScaleWithoutAborts) {
  Stm stm{config(4)};
  TArray<int> arr{4, 0};
  std::vector<std::jthread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        stm.run_top([&, t](Tx& tx) {
          const auto idx = static_cast<std::size_t>(t);
          arr.write(tx, idx, arr.read(tx, idx) + 1);
        });
      }
    });
  }
  threads.clear();
  EXPECT_EQ(stm.stats().top_aborts, 0u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(arr.peek(i), 50);
}

TEST_P(CommitStrategyTest, SnapshotInvariantUnderChurn) {
  Stm stm{config(6)};
  VBox<int> a{70};
  VBox<int> b{30};
  std::atomic<int> violations{0};
  std::atomic<bool> stop{false};
  std::vector<std::jthread> threads;
  for (int w = 0; w < 3; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < 120; ++i) {
        stm.run_top([&](Tx& tx) {
          const int va = a.read(tx);
          a.write(tx, va + 1);
          b.write(tx, 100 - (va + 1));
        });
      }
    });
  }
  threads.emplace_back([&] {
    while (!stop.load()) {
      stm.run_top([&](Tx& tx) {
        if (a.read(tx) + b.read(tx) != 100) violations.fetch_add(1);
      });
    }
  });
  for (int i = 0; i < 3; ++i) threads[static_cast<std::size_t>(i)].join();
  stop.store(true);
  threads.clear();
  EXPECT_EQ(violations.load(), 0);
}

TEST_P(CommitStrategyTest, NestedTreesCommitCorrectly) {
  Stm stm{config(3, 3, 3)};
  TArray<int> arr{12, 0};
  VBox<int> total{0};
  std::vector<std::jthread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      stm.run_top([&, t](Tx& tx) {
        std::vector<std::function<void(Tx&)>> kids;
        for (int k = 0; k < 4; ++k) {
          const auto idx = static_cast<std::size_t>(t * 4 + k);
          kids.emplace_back([&arr, idx](Tx& child) { arr.write(child, idx, 1); });
        }
        tx.run_children(std::move(kids));
        total.write(tx, total.read(tx) + 4);
      });
    });
  }
  threads.clear();
  EXPECT_EQ(total.peek(), 12);
  int sum = 0;
  for (std::size_t i = 0; i < 12; ++i) sum += arr.peek(i);
  EXPECT_EQ(sum, 12);
}

TEST_P(CommitStrategyTest, ChainsPrunedUnderStrategy) {
  Stm stm{config(1)};
  VBox<int> box{0};
  for (int i = 0; i < 300; ++i) {
    stm.run_top([&](Tx& tx) { box.write(tx, i); });
  }
  EXPECT_LE(box.chain_length(), 3u);
}

INSTANTIATE_TEST_SUITE_P(Strategies, CommitStrategyTest,
                         ::testing::Values(CommitStrategy::kGlobalLock,
                                           CommitStrategy::kLockFree),
                         [](const ::testing::TestParamInfo<CommitStrategy>& info) {
                           return info.param == CommitStrategy::kGlobalLock
                                      ? "GlobalLock"
                                      : "LockFree";
                         });

TEST(InstallCas, IdempotentAcrossHelpers) {
  VBox<int> box{0};
  auto v1 = std::make_shared<const int>(1);
  EXPECT_TRUE(box.install_cas(v1, 1, 0));
  EXPECT_FALSE(box.install_cas(v1, 1, 0));  // helper repeat: no-op
  auto v2 = std::make_shared<const int>(2);
  EXPECT_TRUE(box.install_cas(v2, 2, 0));
  EXPECT_FALSE(box.install_cas(v1, 1, 0));  // stale version: no-op
  EXPECT_EQ(box.peek(), 2);
  EXPECT_EQ(box.newest_version(), 2u);
}

TEST(InstallCas, ConcurrentHelpersProduceOneBody) {
  // Many threads race to install the same version; exactly one must win and
  // the chain must contain a single body for it.
  VBox<int> box{0};
  auto value = std::make_shared<const int>(7);
  std::atomic<int> winners{0};
  std::vector<std::jthread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      if (box.install_cas(value, 1, 0)) winners.fetch_add(1);
    });
  }
  threads.clear();
  EXPECT_EQ(winners.load(), 1);
  EXPECT_EQ(box.peek(), 7);
  EXPECT_LE(box.chain_length(), 2u);
}

}  // namespace
}  // namespace autopn::stm
