// Tests for the compositional pipeline model and its parameter fitting: the
// service stage must agree with the SurfaceModel it wraps, predictions must
// behave monotonically in the offered load, the capacity what-ifs must be
// self-consistent with predict(), and the probe-window fit must recover
// perturbed workload parameters from exact probes.
#include <gtest/gtest.h>

#include <cmath>

#include "model/compose.hpp"
#include "model/fit.hpp"
#include "sim/surface.hpp"
#include "sim/workload.hpp"

namespace autopn::model {
namespace {

PipelineParams tpcc_pipeline(std::size_t workers) {
  PipelineParams p;
  p.workload = sim::workload_by_name("tpcc-med");
  p.cores = 48;
  p.workers = workers;
  p.queue_capacity = 256;
  return p;
}

TEST(CompositionalModel, ClosedThroughputMatchesSurfaceWithinWorkerBudget) {
  const CompositionalModel model{tpcc_pipeline(8)};
  const sim::SurfaceModel surface{sim::workload_by_name("tpcc-med"), 48};
  for (const opt::Config cfg : {opt::Config{1, 1}, opt::Config{4, 4},
                                opt::Config{8, 2}, opt::Config{2, 9}}) {
    EXPECT_DOUBLE_EQ(model.closed_throughput(cfg),
                     surface.mean_throughput(cfg))
        << cfg.to_string();
    EXPECT_DOUBLE_EQ(model.service_time(cfg), surface.mean_latency(cfg));
  }
}

TEST(CompositionalModel, WorkerPoolCapsEffectiveTopDegree) {
  // With 4 workers, t > 4 cannot run more than 4 concurrent top-level
  // transactions: every prediction at (16,1) equals the one at (4,1).
  const CompositionalModel model{tpcc_pipeline(4)};
  EXPECT_DOUBLE_EQ(model.closed_throughput({16, 1}),
                   model.closed_throughput({4, 1}));
  EXPECT_DOUBLE_EQ(model.capacity({16, 1}), model.capacity({4, 1}));
  const Prediction a = model.predict({16, 1}, 500.0);
  const Prediction b = model.predict({4, 1}, 500.0);
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
  EXPECT_DOUBLE_EQ(a.p99, b.p99);
}

TEST(CompositionalModel, LowRateFlowsThroughUnshedded) {
  const CompositionalModel model{tpcc_pipeline(8)};
  const opt::Config cfg{4, 4};
  const double rate = 0.2 * model.capacity(cfg);
  const Prediction pred = model.predict(cfg, rate);
  EXPECT_LT(pred.shed_fraction, 1e-9);
  EXPECT_NEAR(pred.throughput, rate, rate * 1e-9);
  EXPECT_GE(pred.p99, pred.p50);
  // The sojourn is at least the service stage itself.
  EXPECT_GE(pred.p50, model.service_quantile(cfg, 0.5) - 1e-12);
}

TEST(CompositionalModel, OverloadShedsDownToCapacity) {
  const CompositionalModel model{tpcc_pipeline(8)};
  const opt::Config cfg{4, 4};
  const double cap = model.capacity(cfg);
  const Prediction pred = model.predict(cfg, 3.0 * cap);
  EXPECT_GT(pred.shed_fraction, 0.4);
  EXPECT_LE(pred.throughput, cap * 1.001);
  // Accepted throughput is exactly the non-shed fraction of the offered load.
  EXPECT_NEAR(pred.throughput, 3.0 * cap * (1.0 - pred.shed_fraction),
              cap * 1e-9);
  EXPECT_GT(pred.utilization, 0.95);
}

TEST(CompositionalModel, PredictionsMonotoneInArrivalRate) {
  const CompositionalModel model{tpcc_pipeline(8)};
  const opt::Config cfg{4, 4};
  const double cap = model.capacity(cfg);
  double prev_thr = -1.0;
  double prev_shed = -1.0;
  double prev_p99 = -1.0;
  for (double frac = 0.2; frac <= 2.4; frac += 0.2) {
    const Prediction pred = model.predict(cfg, frac * cap);
    EXPECT_GE(pred.throughput, prev_thr - 1e-9) << "frac=" << frac;
    EXPECT_GE(pred.shed_fraction, prev_shed) << "frac=" << frac;
    EXPECT_GE(pred.p99, prev_p99 - 1e-12) << "frac=" << frac;
    prev_thr = pred.throughput;
    prev_shed = pred.shed_fraction;
    prev_p99 = pred.p99;
  }
}

TEST(CompositionalModel, WireCostsShiftSojournOnly) {
  PipelineParams with_wire = tpcc_pipeline(8);
  with_wire.wire.accept_seconds = 2e-4;
  with_wire.wire.reply_seconds = 3e-4;
  const CompositionalModel bare{tpcc_pipeline(8)};
  const CompositionalModel wired{with_wire};
  const opt::Config cfg{4, 4};
  const double rate = 0.5 * bare.capacity(cfg);
  const Prediction a = bare.predict(cfg, rate);
  const Prediction b = wired.predict(cfg, rate);
  EXPECT_DOUBLE_EQ(b.throughput, a.throughput);
  EXPECT_NEAR(b.p50 - a.p50, 5e-4, 1e-12);
  EXPECT_NEAR(b.p99 - a.p99, 5e-4, 1e-12);
}

TEST(CompositionalModel, MaxRateForShedInvertsPredict) {
  const CompositionalModel model{tpcc_pipeline(8)};
  const opt::Config cfg{4, 4};
  const double target = 0.01;
  const double rate = model.max_rate_for_shed(cfg, target);
  EXPECT_GT(rate, 0.0);
  EXPECT_LE(model.predict(cfg, rate).shed_fraction, target * 1.01);
  EXPECT_GT(model.predict(cfg, rate * 1.25).shed_fraction, target);
}

TEST(CompositionalModel, MinShardsForShedIsMinimal) {
  const CompositionalModel model{tpcc_pipeline(8)};
  const opt::Config cfg{4, 4};
  const double target = 0.01;
  const double rate = 5.0 * model.capacity(cfg);
  const std::size_t shards = model.min_shards_for_shed(rate, cfg, target);
  ASSERT_GE(shards, 2u);
  ASSERT_LE(shards, 64u);
  EXPECT_LE(model.predict(cfg, rate / shards).shed_fraction, target);
  EXPECT_GT(model.predict(cfg, rate / (shards - 1)).shed_fraction, target);
}

TEST(CompositionalModel, BestAtDominatesCornerConfigs) {
  const CompositionalModel model{tpcc_pipeline(16)};
  const opt::ConfigSpace space{48};
  const double rate = 400.0;
  const auto best = model.best_at(space, rate);
  EXPECT_TRUE(space.valid(best.config));
  for (const opt::Config cfg : {opt::Config{1, 1}, opt::Config{1, 48},
                                opt::Config{48, 1}}) {
    EXPECT_GE(best.prediction.throughput,
              model.predict(cfg, rate).throughput - 1e-9)
        << cfg.to_string();
  }
}

TEST(CompositionalModel, SurfacesCoverTheSpace) {
  const CompositionalModel model{tpcc_pipeline(8)};
  const opt::ConfigSpace space{48};
  const auto closed = model.closed_surface(space);
  const auto open = model.open_surface(space, 300.0);
  EXPECT_EQ(closed.size(), space.size());
  EXPECT_EQ(open.size(), space.size());
  for (const auto& obs : closed) {
    EXPECT_TRUE(space.valid(obs.config));
    EXPECT_GT(obs.kpi, 0.0);
  }
  // Open-loop KPIs never exceed the offered rate.
  for (const auto& obs : open) EXPECT_LE(obs.kpi, 300.0 + 1e-9);
}

// ---- fitting -------------------------------------------------------------

sim::WorkloadParams synthetic_truth() {
  sim::WorkloadParams p;
  p.name = "synthetic";
  p.base_work = 5e-4;
  p.parallel_fraction = 0.6;
  p.child_speedup_exponent = 0.9;
  p.spawn_overhead = 1e-5;
  p.batch_overhead = 2e-5;
  p.top_conflict = 0.02;
  p.sibling_conflict = 0.01;
  p.saturation = 0.2;
  return p;
}

TEST(Fit, ProbeConfigsAreThePivots) {
  const opt::ConfigSpace space{48};
  const auto probes = probe_configs(space);
  ASSERT_EQ(probes.size(), 4u);
  EXPECT_EQ(probes[0], (opt::Config{1, 1}));
  EXPECT_EQ(probes[1], (opt::Config{1, 48}));
  EXPECT_EQ(probes[2], (opt::Config{7, 1}));  // nearest grid t to sqrt(48)
  EXPECT_EQ(probes[3], (opt::Config{48, 1}));
}

TEST(Fit, RecoversPerturbedParametersFromExactProbes) {
  const sim::WorkloadParams truth = synthetic_truth();
  const sim::SurfaceModel oracle{truth, 48};
  const opt::ConfigSpace space{48};

  std::vector<Probe> probes;
  for (const opt::Config& cfg : probe_configs(space)) {
    probes.push_back({cfg, oracle.mean_throughput(cfg)});
  }

  // Start from a badly mis-calibrated copy; only the three fitted fields
  // differ from the truth.
  sim::WorkloadParams base = truth;
  base.base_work = 2e-3;
  base.parallel_fraction = 0.2;
  base.top_conflict = 0.3;
  const sim::WorkloadParams fitted = fit_workload(base, probes, 48);

  EXPECT_NEAR(fitted.base_work, truth.base_work, truth.base_work * 0.01);
  EXPECT_NEAR(fitted.parallel_fraction, truth.parallel_fraction, 0.02);
  EXPECT_NEAR(fitted.top_conflict, truth.top_conflict,
              truth.top_conflict * 0.05);

  // The recovered surface reproduces the oracle away from the pivots too.
  const sim::SurfaceModel refit{fitted, 48};
  for (const opt::Config cfg : {opt::Config{4, 4}, opt::Config{8, 2},
                                opt::Config{12, 4}}) {
    const double want = oracle.mean_throughput(cfg);
    EXPECT_NEAR(refit.mean_throughput(cfg), want, want * 0.05)
        << cfg.to_string();
  }
}

TEST(Fit, MissingProbesKeepBaseValues) {
  sim::WorkloadParams base = synthetic_truth();
  const sim::WorkloadParams fitted = fit_workload(base, {}, 48);
  EXPECT_DOUBLE_EQ(fitted.base_work, base.base_work);
  EXPECT_DOUBLE_EQ(fitted.parallel_fraction, base.parallel_fraction);
  EXPECT_DOUBLE_EQ(fitted.top_conflict, base.top_conflict);
}

TEST(Fit, WindowFitRescalesServiceAndCopiesWire) {
  const sim::WorkloadParams base = synthetic_truth();
  const sim::SurfaceModel surface{base, 48};
  const opt::Config at{4, 4};

  MeasuredWindow window;
  window.mean_service_seconds = 2.0 * surface.mean_latency(at);
  window.accept_seconds = 3e-5;
  window.reply_seconds = 7e-5;
  const FittedPipeline fitted = fit_from_window(base, window, at, 48);

  // One multiplicative correction step: base_work scales by exactly the
  // measured/predicted service ratio.
  EXPECT_NEAR(fitted.workload.base_work, 2.0 * base.base_work,
              base.base_work * 1e-9);
  EXPECT_DOUBLE_EQ(fitted.wire.accept_seconds, 3e-5);
  EXPECT_DOUBLE_EQ(fitted.wire.reply_seconds, 7e-5);
}

TEST(Fit, WindowFitMovesHazardTowardMeasuredAbortRate) {
  const sim::WorkloadParams base = synthetic_truth();
  const sim::SurfaceModel surface{base, 48};
  const opt::Config at{8, 2};
  const double predicted = surface.top_abort_probability(at);
  ASSERT_GT(predicted, 0.0);
  ASSERT_LT(predicted, 1.0);

  MeasuredWindow hotter;
  hotter.abort_rate = std::min(0.95, predicted * 1.5);
  EXPECT_GT(fit_from_window(base, hotter, at, 48).workload.top_conflict,
            base.top_conflict);

  MeasuredWindow cooler;
  cooler.abort_rate = predicted * 0.5;
  EXPECT_LT(fit_from_window(base, cooler, at, 48).workload.top_conflict,
            base.top_conflict);
}

}  // namespace
}  // namespace autopn::model
