// Proves the sync seam (util/sync.hpp) is free in production builds: every
// alias IS the raw std primitive (type identity, not a lookalike wrapper —
// so codegen through the seam is the codegen of the primitive), and
// sync::Shared<T> is layout-identical to a bare T. These are the compile-time
// guarantees docs/MODEL_CHECKING.md relies on when it says the seam "costs
// nothing when AUTOPN_MC is off".

#include "util/sync.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

namespace autopn::sync {
namespace {

#if !defined(AUTOPN_MC) || !AUTOPN_MC
// Type identity: the production aliases are the std primitives themselves.
// A seam that merely behaved like std::atomic could still pessimize codegen
// or break ABI expectations; is_same proves there is nothing to pessimize.
static_assert(std::is_same_v<Atomic<std::uint64_t>, std::atomic<std::uint64_t>>);
static_assert(std::is_same_v<Atomic<bool>, std::atomic<bool>>);
static_assert(std::is_same_v<Atomic<int*>, std::atomic<int*>>);
static_assert(
    std::is_same_v<Atomic<std::shared_ptr<int>>, std::atomic<std::shared_ptr<int>>>);
static_assert(std::is_same_v<Mutex, std::mutex>);
static_assert(std::is_same_v<CondVar, std::condition_variable>);
static_assert(std::is_same_v<UniqueLock, std::unique_lock<std::mutex>>);
static_assert(std::is_same_v<ScopedLock, std::scoped_lock<std::mutex>>);

// Shared<T> is a transparent cell: same size and alignment as T, trivially
// destructible when T is — the wrapper adds no storage and no vtable.
static_assert(sizeof(Shared<std::uint64_t>) == sizeof(std::uint64_t));
static_assert(alignof(Shared<std::uint64_t>) == alignof(std::uint64_t));
static_assert(sizeof(Shared<std::shared_ptr<int>>) == sizeof(std::shared_ptr<int>));
static_assert(sizeof(Shared<std::vector<int>>) == sizeof(std::vector<int>));
static_assert(std::is_trivially_destructible_v<Shared<int>>);
static_assert(std::is_trivially_copyable_v<Shared<int>>);
#endif

TEST(SyncSeam, SharedReadWriteRoundTrip) {
  Shared<int> cell{7};
  EXPECT_EQ(cell.read(), 7);
  cell.write() = 11;
  EXPECT_EQ(cell.read(), 11);
  ++cell.write();
  EXPECT_EQ(cell.read(), 12);
}

TEST(SyncSeam, SharedHoldsMoveOnlyFriendlyTypes) {
  Shared<std::string> cell{std::string{"a"}};
  cell.write() += "b";
  EXPECT_EQ(cell.read(), "ab");

  Shared<std::vector<int>> vec;
  vec.write().push_back(3);
  vec.write().push_back(4);
  EXPECT_EQ(vec.read().size(), 2u);
  EXPECT_EQ(vec.read()[1], 4);
}

TEST(SyncSeam, SharedDefaultConstructsValue) {
  Shared<std::uint64_t> cell;
  cell.write() = 0;  // default ctor leaves scalars uninitialized, like bare T
  EXPECT_EQ(cell.read(), 0u);
  Shared<std::string> str;
  EXPECT_TRUE(str.read().empty());
}

TEST(SyncSeam, AtomicAndMutexBehaveLikePrimitives) {
  Atomic<std::uint64_t> counter{0};
  Mutex mutex;
  Shared<std::uint64_t> guarded = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        counter.fetch_add(1, std::memory_order_relaxed);
        ScopedLock lock{mutex};
        ++guarded.write();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.load(std::memory_order_acquire), 4000u);
  EXPECT_EQ(guarded.read(), 4000u);
}

TEST(SyncSeam, CondVarWakesWaiter) {
  Mutex mutex;
  CondVar cv;
  Shared<bool> ready = false;
  std::thread waker{[&] {
    ScopedLock lock{mutex};
    ready.write() = true;
    cv.notify_one();
  }};
  {
    UniqueLock lock{mutex};
    cv.wait(lock, [&] { return ready.read(); });
  }
  waker.join();
  EXPECT_TRUE(ready.read());
}

}  // namespace
}  // namespace autopn::sync
