// Tests for the discrete-event PN-TM simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/des.hpp"
#include "sim/surface.hpp"
#include "sim/workload.hpp"

namespace autopn::sim {
namespace {

DesParams quiet_params() {
  DesParams p;
  p.cores = 48;
  p.base_work = 1e-4;
  p.work_jitter = 0.0;
  p.parallel_fraction = 0.5;
  p.spawn_overhead = 0.0;
  p.data_granules = 1u << 20;  // effectively no conflicts
  p.reads_per_tx = 4;
  p.writes_per_tx = 1;
  p.sibling_conflict_prob = 0.0;
  return p;
}

TEST(Des, DeterministicGivenSeed) {
  DesSimulator a{quiet_params(), opt::Config{4, 2}, 7};
  DesSimulator b{quiet_params(), opt::Config{4, 2}, 7};
  const auto ra = a.run(0.5);
  const auto rb = b.run(0.5);
  EXPECT_EQ(ra.commits, rb.commits);
  EXPECT_EQ(ra.aborts, rb.aborts);
}

TEST(Des, NoContentionNoAborts) {
  DesParams p = quiet_params();
  DesSimulator sim{p, opt::Config{8, 1}, 1};
  const auto r = sim.run(1.0);
  EXPECT_GT(r.commits, 0u);
  // With 2^20 granules and 5 accesses/tx, conflicts are birthday-bound rare
  // (expected ~3e-5 per commit), not strictly zero.
  EXPECT_LT(r.abort_rate(), 1e-3);
}

TEST(Des, ThroughputScalesWithTopLevelSlots) {
  const auto r1 = DesSimulator{quiet_params(), opt::Config{1, 1}, 2}.run(1.0);
  const auto r8 = DesSimulator{quiet_params(), opt::Config{8, 1}, 2}.run(1.0);
  EXPECT_NEAR(r8.throughput() / r1.throughput(), 8.0, 0.8);
}

TEST(Des, SequentialRateIsInverseWork) {
  DesParams p = quiet_params();
  DesSimulator sim{p, opt::Config{1, 1}, 3};
  const auto r = sim.run(1.0);
  EXPECT_NEAR(r.throughput(), 1.0 / p.base_work, 0.05 / p.base_work);
}

TEST(Des, NestingShortensTransactions) {
  DesParams p = quiet_params();
  p.parallel_fraction = 0.9;
  const auto flat = DesSimulator{p, opt::Config{1, 1}, 4}.run(1.0);
  const auto nested = DesSimulator{p, opt::Config{1, 8}, 4}.run(1.0);
  EXPECT_GT(nested.throughput(), 2.0 * flat.throughput());
}

TEST(Des, HotSpotCausesAborts) {
  DesParams p = quiet_params();
  p.hot_fraction = 0.8;
  p.hot_granules = 8;
  DesSimulator sim{p, opt::Config{16, 1}, 5};
  const auto r = sim.run(1.0);
  EXPECT_GT(r.aborts, 0u);
  EXPECT_GT(r.abort_rate(), 0.1);
}

TEST(Des, AbortRateGrowsWithConcurrency) {
  DesParams p = quiet_params();
  p.data_granules = 2048;
  p.reads_per_tx = 64;
  p.writes_per_tx = 16;
  const auto low = DesSimulator{p, opt::Config{2, 1}, 6}.run(0.5);
  const auto high = DesSimulator{p, opt::Config{32, 1}, 6}.run(0.5);
  EXPECT_GT(high.abort_rate(), low.abort_rate());
}

TEST(Des, SiblingRetriesSampled) {
  DesParams p = quiet_params();
  p.sibling_conflict_prob = 0.5;
  DesSimulator sim{p, opt::Config{2, 8}, 7};
  const auto r = sim.run(0.5);
  EXPECT_GT(r.sibling_retries, 0u);
}

TEST(Des, CommitCallbackTimestampsMonotone) {
  DesSimulator sim{quiet_params(), opt::Config{4, 1}, 8};
  double prev = -1.0;
  bool monotone = true;
  std::size_t events = 0;
  sim.set_commit_callback([&](double at) {
    monotone = monotone && at >= prev;
    prev = at;
    ++events;
  });
  const auto r = sim.run(0.2);
  EXPECT_TRUE(monotone);
  EXPECT_EQ(events, r.commits);
}

TEST(Des, RunCommitsStopsAtCount) {
  DesSimulator sim{quiet_params(), opt::Config{4, 1}, 9};
  const auto r = sim.run_commits(100);
  EXPECT_EQ(r.commits, 100u);
  EXPECT_GT(r.sim_seconds, 0.0);
}

TEST(Des, ReconfigureChangesAdmission) {
  DesParams p = quiet_params();
  DesSimulator sim{p, opt::Config{1, 1}, 10};
  const auto before = sim.run(0.5);
  sim.reconfigure(opt::Config{8, 1});
  const auto after = sim.run(0.5);
  EXPECT_GT(after.throughput(), 4.0 * before.throughput());
  sim.reconfigure(opt::Config{1, 1});
  const auto shrunk = sim.run(0.5);
  EXPECT_LT(shrunk.throughput(), 2.0 * before.throughput());
}

TEST(Des, VirtualTimeAdvancesAcrossRuns) {
  DesSimulator sim{quiet_params(), opt::Config{2, 1}, 11};
  (void)sim.run(0.25);
  EXPECT_DOUBLE_EQ(sim.now(), 0.25);
  (void)sim.run(0.25);
  EXPECT_DOUBLE_EQ(sim.now(), 0.5);
}

TEST(Des, MatchesAnalyticalShapeOnTpccMed) {
  // Cross-validation with the closed-form model: the DES need not match
  // absolute numbers, but the preference ordering across representative
  // configurations must agree (the optimizer only needs the shape).
  const auto wl = workload_by_name("tpcc-med");
  const SurfaceModel analytical{wl, 48};
  const DesParams des_params = des_from_workload(wl, 48);
  auto des_throughput = [&](opt::Config cfg) {
    DesSimulator sim{des_params, cfg, 13};
    return sim.run(2.0).throughput();
  };
  // The analytical optimum region must beat the extremes in the DES too.
  const double at_opt = des_throughput(opt::Config{20, 2});
  const double at_seq = des_throughput(opt::Config{1, 1});
  const double at_all_nested = des_throughput(opt::Config{1, 48});
  EXPECT_GT(at_opt, 3.0 * at_seq);
  EXPECT_GT(at_opt, 2.0 * at_all_nested);
  (void)analytical;
}

}  // namespace
}  // namespace autopn::sim
