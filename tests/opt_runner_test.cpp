// Tests for the convergence runner and the optimizers' common protocol.
#include <gtest/gtest.h>

#include <memory>

#include "opt/autopn_optimizer.hpp"
#include "opt/baselines.hpp"
#include "opt/runner.hpp"

namespace autopn::opt {
namespace {

TEST(Runner, MaxStepsBoundsRunawayOptimizers) {
  // Random search on a surface that keeps improving would explore the whole
  // space; max_steps cuts it off.
  ConfigSpace space{48};
  RandomSearch rs{space, 1, /*no_improve_window=*/1000, /*no_improve_eps=*/0.0};
  int calls = 0;
  const auto result = run_to_convergence(
      rs, [&](const Config&) { return static_cast<double>(++calls); }, 10);
  EXPECT_EQ(result.explorations(), 10u);
}

TEST(Runner, TraceTracksBestSoFar) {
  ConfigSpace space{8};
  GridSearch gs{space, /*window=*/100, /*eps=*/0.0};
  const auto result = run_to_convergence(
      gs, [](const Config& cfg) { return static_cast<double>(cfg.t * 10 - cfg.c); },
      20);
  double best = -1e18;
  for (const auto& step : result.steps) {
    best = std::max(best, step.kpi);
    EXPECT_DOUBLE_EQ(step.best_kpi, best);
  }
  EXPECT_DOUBLE_EQ(result.final_best_kpi, best);
}

TEST(Runner, FinalBestMatchesOptimizerBest) {
  ConfigSpace space{16};
  AutoPnOptimizer autopn{space, {}, 3};
  const auto result = run_to_convergence(
      autopn, [](const Config& cfg) { return 100.0 / (1.0 + std::abs(cfg.t - 4)); });
  EXPECT_EQ(result.final_best, autopn.best());
}

TEST(Runner, ZeroStepsWhenOptimizerStartsConverged) {
  // An optimizer that immediately returns nullopt produces an empty trace.
  ConfigSpace space{4};
  class Done final : public Optimizer {
   public:
    std::optional<Config> propose() override { return std::nullopt; }
    void observe(const Config&, double) override {}
    Config best() const override { return Config{1, 1}; }
    std::string name() const override { return "done"; }
  } done;
  const auto result = run_to_convergence(done, [](const Config&) { return 1.0; });
  EXPECT_EQ(result.explorations(), 0u);
  EXPECT_EQ(result.final_best, (Config{1, 1}));
}

TEST(OptimizerNames, AreStable) {
  ConfigSpace space{8};
  EXPECT_EQ(RandomSearch(space, 1).name(), "random");
  EXPECT_EQ(GridSearch(space).name(), "grid");
  EXPECT_EQ(HillClimbing(space, 1).name(), "hill-climbing");
  EXPECT_EQ(SimulatedAnnealing(space, 1).name(), "simulated-annealing");
  EXPECT_EQ(GeneticAlgorithm(space, 1).name(), "genetic");
  EXPECT_EQ(AutoPnOptimizer(space, {}, 1).name(), "autopn");
}

TEST(Runner, NegativeKpisHandled) {
  // Minimization problems are often encoded as negated KPIs; the bookkeeping
  // must not assume positivity.
  ConfigSpace space{8};
  GridSearch gs{space, 3, 0.10};
  const auto result = run_to_convergence(
      gs, [](const Config& cfg) { return -static_cast<double>(cfg.t + cfg.c); }, 50);
  EXPECT_LT(result.final_best_kpi, 0.0);
}

}  // namespace
}  // namespace autopn::opt
