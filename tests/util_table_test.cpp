// Tests for the table/CSV emitters and the logging facility.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "util/log.hpp"
#include "util/table.hpp"

namespace autopn::util {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t{{"name", "value"}};
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name    value"), std::string::npos);
  EXPECT_NE(out.find("longer  22"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, RejectsArityMismatch) {
  TextTable t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable{std::vector<std::string>{}}, std::invalid_argument);
}

TEST(CsvWriter, PlainRow) {
  std::ostringstream os;
  CsvWriter csv{os};
  csv.write_row({"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(CsvWriter, QuotesSpecials) {
  std::ostringstream os;
  CsvWriter csv{os};
  csv.write_row({"x,y", "he said \"hi\"", "line\nbreak"});
  EXPECT_EQ(os.str(), "\"x,y\",\"he said \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(Format, FmtDouble) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
}

TEST(Format, FmtPercent) {
  EXPECT_EQ(fmt_percent(0.218, 1), "21.8%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
}

TEST(Log, LevelGate) {
  set_log_level(LogLevel::kOff);
  bool built = false;
  log_if(LogLevel::kInfo, "test", [&](std::ostringstream&) { built = true; });
  EXPECT_FALSE(built);  // message lazily skipped

  set_log_level(LogLevel::kInfo);
  log_if(LogLevel::kInfo, "test", [&](std::ostringstream& os) {
    built = true;
    os << "hello";
  });
  EXPECT_TRUE(built);
  set_log_level(LogLevel::kOff);
}

TEST(Log, MacroCompiles) {
  set_log_level(LogLevel::kDebug);
  AUTOPN_LOG_DEBUG("tag", "value=" << 42);
  AUTOPN_LOG_INFO("tag", "info");
  AUTOPN_LOG_ERROR("tag", "error");
  set_log_level(LogLevel::kOff);
}

}  // namespace
}  // namespace autopn::util
