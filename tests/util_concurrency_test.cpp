// Tests for the concurrency primitives: resizable semaphore, thread pool,
// wait group, and clocks.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/clock.hpp"
#include "util/semaphore.hpp"
#include "util/thread_pool.hpp"

namespace autopn::util {
namespace {

using namespace std::chrono_literals;

TEST(ResizableSemaphore, TryAcquireRespectsCapacity) {
  ResizableSemaphore sem{2};
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
  sem.release();
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_EQ(sem.in_use(), 2u);
}

TEST(ResizableSemaphore, GrowReleasesWaiter) {
  ResizableSemaphore sem{1};
  sem.acquire();
  std::atomic<bool> acquired{false};
  std::jthread waiter{[&] {
    sem.acquire();
    acquired.store(true);
    sem.release();
  }};
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(acquired.load());
  sem.set_capacity(2);
  for (int i = 0; i < 200 && !acquired.load(); ++i) std::this_thread::sleep_for(5ms);
  EXPECT_TRUE(acquired.load());
  sem.release();
}

TEST(ResizableSemaphore, ShrinkDoesNotRevoke) {
  ResizableSemaphore sem{3};
  sem.acquire();
  sem.acquire();
  sem.set_capacity(1);
  EXPECT_EQ(sem.in_use(), 2u);  // still held
  EXPECT_FALSE(sem.try_acquire());
  sem.release();
  EXPECT_FALSE(sem.try_acquire());  // 1 in use == new capacity
  sem.release();
  EXPECT_TRUE(sem.try_acquire());
  sem.release();
}

TEST(ResizableSemaphore, GuardReleasesOnScopeExit) {
  ResizableSemaphore sem{1};
  {
    SemaphoreGuard guard{sem};
    EXPECT_EQ(sem.in_use(), 1u);
  }
  EXPECT_EQ(sem.in_use(), 0u);
}

TEST(ResizableSemaphore, ConcurrentStress) {
  ResizableSemaphore sem{4};
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::vector<std::jthread> threads;
  threads.reserve(16);
  for (int i = 0; i < 16; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < 50; ++j) {
        SemaphoreGuard guard{sem};
        const int now = concurrent.fetch_add(1) + 1;
        int expected = peak.load();
        while (now > expected && !peak.compare_exchange_weak(expected, now)) {
        }
        std::this_thread::yield();
        concurrent.fetch_sub(1);
      }
    });
  }
  threads.clear();  // join
  EXPECT_LE(peak.load(), 4);
  EXPECT_GE(peak.load(), 1);
}

TEST(ResizableSemaphore, ShrinkBelowInFlightNeverDeadlocksNorOverAdmits) {
  // The live-reconfiguration path the serving engine hammers: the actuator
  // resizes the t-gate below the number of in-flight holders while worker
  // threads keep acquiring. Shrinking must neither deadlock waiters nor
  // admit more holders than the largest capacity ever set.
  constexpr std::size_t kMaxCapacity = 6;
  ResizableSemaphore sem{4};
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::atomic<bool> stop{false};
  {
    std::vector<std::jthread> workers;
    for (int i = 0; i < 8; ++i) {
      workers.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          SemaphoreGuard guard{sem};
          const int now = concurrent.fetch_add(1) + 1;
          int expected = peak.load();
          while (now > expected && !peak.compare_exchange_weak(expected, now)) {
          }
          std::this_thread::yield();
          concurrent.fetch_sub(1);
        }
      });
    }
    // Hammer the capacity through repeated shrink-below-in-flight / regrow
    // cycles, including shrinking to 1 while up to 6 holders are inside.
    constexpr std::size_t kCycle[] = {1, 3, 2, kMaxCapacity, 1, 4};
    for (int round = 0; round < 600; ++round) {
      sem.set_capacity(kCycle[round % std::size(kCycle)]);
      if (round % 16 == 0) std::this_thread::sleep_for(1ms);
    }
    sem.set_capacity(2);
    stop.store(true);
  }  // join — completing at all proves no waiter deadlocked
  EXPECT_LE(peak.load(), static_cast<int>(kMaxCapacity));
  EXPECT_GE(peak.load(), 1);
  EXPECT_EQ(sem.in_use(), 0u);  // fully drained after the storm
  // The final shrunk capacity is enforced once holders drained.
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
  sem.release();
  sem.release();
}

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool{2};
  std::atomic<int> counter{0};
  WaitGroup wg;
  wg.add(100);
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] {
      counter.fetch_add(1);
      wg.done();
    });
  }
  wg.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, RunAndWaitCompletesAll) {
  ThreadPool pool{3};
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 64; ++i) tasks.emplace_back([&] { counter.fetch_add(1); });
  pool.run_and_wait(std::move(tasks));
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, NestedForkJoinOnSingleWorker) {
  // A task that itself forks and joins must not deadlock a 1-worker pool
  // thanks to help-draining.
  ThreadPool pool{1};
  std::atomic<int> leaves{0};
  std::vector<std::function<void()>> outer;
  for (int i = 0; i < 4; ++i) {
    outer.emplace_back([&] {
      std::vector<std::function<void()>> inner;
      for (int j = 0; j < 4; ++j) inner.emplace_back([&] { leaves.fetch_add(1); });
      pool.run_and_wait(std::move(inner));
    });
  }
  pool.run_and_wait(std::move(outer));
  EXPECT_EQ(leaves.load(), 16);
}

TEST(ThreadPool, TryRunOneDrainsQueue) {
  ThreadPool pool{1};
  // Stall the single worker so tasks stay queued.
  std::atomic<bool> release{false};
  WaitGroup stall;
  stall.add(1);
  pool.submit([&] {
    while (!release.load()) std::this_thread::sleep_for(1ms);
    stall.done();
  });
  std::this_thread::sleep_for(10ms);
  std::atomic<int> ran{0};
  pool.submit([&] { ran.fetch_add(1); });
  pool.submit([&] { ran.fetch_add(1); });
  while (pool.try_run_one()) {
  }
  EXPECT_EQ(ran.load(), 2);
  release.store(true);
  stall.wait();
}

TEST(ThreadPool, WorkerCountClamped) {
  ThreadPool pool{0};
  EXPECT_EQ(pool.worker_count(), 1u);
}

TEST(WaitGroup, WaitForTimesOut) {
  WaitGroup wg;
  wg.add(1);
  EXPECT_FALSE(wg.wait_for(5ms));
  wg.done();
  EXPECT_TRUE(wg.wait_for(5ms));
}

TEST(VirtualClock, AdvanceAndSet) {
  VirtualClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  clock.advance(1.5);
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
  clock.advance(0.5);
  EXPECT_DOUBLE_EQ(clock.now(), 2.0);
  clock.set(10.0);
  EXPECT_DOUBLE_EQ(clock.now(), 10.0);
}

TEST(WallClock, MonotonicAndAdvancing) {
  WallClock clock;
  const double a = clock.now();
  std::this_thread::sleep_for(5ms);
  const double b = clock.now();
  EXPECT_GT(b, a);
  EXPECT_GE(b - a, 0.004);
}

TEST(Stopwatch, MeasuresVirtualTime) {
  VirtualClock clock;
  Stopwatch sw{clock};
  clock.advance(3.0);
  EXPECT_DOUBLE_EQ(sw.elapsed(), 3.0);
  sw.restart();
  EXPECT_DOUBLE_EQ(sw.elapsed(), 0.0);
  clock.advance(1.0);
  EXPECT_DOUBLE_EQ(sw.elapsed(), 1.0);
}

}  // namespace
}  // namespace autopn::util
