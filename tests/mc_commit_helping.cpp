// Model-checks the JVSTM-style helping commit protocol
// (LockFreeCommitManager) through the sync seam: two committers race full
// commits to disjoint boxes, so every interleaving of the chain-head CAS,
// cooperative help_commit writeback, and monotone clock publish is explored.
// Exhaustive success proves the spelled memory orders are SUFFICIENT for the
// protocol invariants (dense versions, both writes installed, no data race on
// the commit record's plain fields) — not merely explicit.
//
// --weaken-publish flips detail::mc_weaken_record_publish, downgrading the
// record-publish CAS from acq_rel to relaxed. The record's version/writes
// then reach helpers without a happens-before edge, and the checker must
// report the race with a replayable schedule (run with --expect-failure as
// the mc_commit_helping_weakened CTest fixture).

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "mc/explore.hpp"
#include "mc_harness.hpp"
#include "stm/commit_manager.hpp"
#include "stm/snapshot_registry.hpp"
#include "stm/stats.hpp"
#include "stm/vbox.hpp"
#include "util/sync.hpp"

namespace {

namespace mc = autopn::mc;
namespace stm = autopn::stm;
namespace sync = autopn::sync;

struct World {
  sync::Atomic<std::uint64_t> clock{0};
  stm::SnapshotRegistry registry{clock, 2};
  stm::ContentionProfiler profiler;
  std::unique_ptr<stm::CommitManager> manager = stm::make_commit_manager(
      stm::CommitStrategy::kLockFree, clock, registry, profiler);
  stm::VBox<int> box_a{0};
  stm::VBox<int> box_b{0};
};

void commit_to(const std::shared_ptr<World>& w, stm::VBoxBase& box, int value) {
  stm::CommitRequest req;
  req.snapshot = w->clock.load(std::memory_order_seq_cst);
  req.writes.emplace_back(&box, std::make_shared<const int>(value));
  // Disjoint write sets with empty read sets never conflict.
  w->manager->commit(req);
}

void body() {
  auto w = std::make_shared<World>();
  mc::Thread t1{[w] { commit_to(w, w->box_a, 1); }};
  mc::Thread t2{[w] { commit_to(w, w->box_b, 2); }};
  t1.join();
  t2.join();

  // Serialization invariants, checked at quiescence in EVERY interleaving.
  MC_ASSERT(w->clock.load(std::memory_order_seq_cst) == 2,
            "two commits claim exactly two versions (dense clock)");
  MC_ASSERT(w->box_a.peek() == 1 && w->box_b.peek() == 2,
            "both write sets installed");
  const std::uint64_t va = w->box_a.newest_version();
  const std::uint64_t vb = w->box_b.newest_version();
  MC_ASSERT(va != vb && va >= 1 && va <= 2 && vb >= 1 && vb <= 2,
            "each commit owns a distinct version in {1,2}");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--weaken-publish") == 0) {
      stm::detail::mc_weaken_record_publish = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  return autopn::mc_harness::run(static_cast<int>(passthrough.size()),
                                 passthrough.data(), "mc_commit_helping",
                                 body);
}
