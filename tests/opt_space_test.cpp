// Tests for the (t, c) configuration lattice and the biased sampling sets.
#include <gtest/gtest.h>

#include <set>

#include "opt/config_space.hpp"

namespace autopn::opt {
namespace {

TEST(ConfigSpace, Paper48CoreSpaceHas198Configs) {
  // The paper reports exactly 198 configurations for the 48-core machine.
  ConfigSpace space{48};
  EXPECT_EQ(space.size(), 198u);
}

TEST(ConfigSpace, SmallSpacesEnumerated) {
  // n=4: (1,1..4),(2,1..2),(3,1),(4,1) = 8 configs.
  ConfigSpace space{4};
  EXPECT_EQ(space.size(), 8u);
}

TEST(ConfigSpace, SingleCore) {
  ConfigSpace space{1};
  ASSERT_EQ(space.size(), 1u);
  EXPECT_EQ(space.at(0), (Config{1, 1}));
}

TEST(ConfigSpace, RejectsZeroCores) {
  EXPECT_THROW(ConfigSpace{0}, std::invalid_argument);
}

TEST(ConfigSpace, ValidityMatchesDefinition) {
  ConfigSpace space{48};
  EXPECT_TRUE(space.valid(Config{48, 1}));
  EXPECT_TRUE(space.valid(Config{24, 2}));
  EXPECT_TRUE(space.valid(Config{6, 8}));
  EXPECT_FALSE(space.valid(Config{25, 2}));
  EXPECT_FALSE(space.valid(Config{0, 1}));
  EXPECT_FALSE(space.valid(Config{1, 0}));
  EXPECT_FALSE(space.valid(Config{49, 1}));
}

TEST(ConfigSpace, AllEntriesValidAndUnique) {
  ConfigSpace space{48};
  std::set<std::pair<int, int>> seen;
  for (const Config& cfg : space.all()) {
    EXPECT_TRUE(space.valid(cfg));
    EXPECT_TRUE(seen.emplace(cfg.t, cfg.c).second);
  }
}

TEST(ConfigSpace, IndexOfRoundTrips) {
  ConfigSpace space{48};
  for (std::size_t i = 0; i < space.size(); ++i) {
    const auto idx = space.index_of(space.at(i));
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(*idx, i);
  }
  EXPECT_FALSE(space.index_of(Config{30, 2}).has_value());
}

TEST(ConfigSpace, NeighborsInteriorHas8) {
  ConfigSpace space{48};
  const auto n = space.neighbors(Config{4, 4});
  EXPECT_EQ(n.size(), 8u);
  for (const Config& cfg : n) {
    EXPECT_TRUE(space.valid(cfg));
    EXPECT_LE(std::abs(cfg.t - 4), 1);
    EXPECT_LE(std::abs(cfg.c - 4), 1);
    EXPECT_FALSE((cfg == Config{4, 4}));
  }
}

TEST(ConfigSpace, NeighborsCornerClipped) {
  ConfigSpace space{48};
  const auto n = space.neighbors(Config{1, 1});
  EXPECT_EQ(n.size(), 3u);  // (1,2),(2,1),(2,2)
}

TEST(ConfigSpace, NeighborsBoundaryRespectsBudget) {
  ConfigSpace space{48};
  for (const Config& cfg : space.neighbors(Config{24, 2})) {
    EXPECT_TRUE(space.valid(cfg));
  }
  // Only (23,1), (24,1), (25,1) and (23,2) fit the t*c <= 48 budget.
  EXPECT_EQ(space.neighbors(Config{24, 2}).size(), 4u);
}

TEST(ConfigSpace, BiasedSampleSizes) {
  ConfigSpace space{48};
  EXPECT_EQ(space.biased_sample(3).size(), 3u);
  EXPECT_EQ(space.biased_sample(5).size(), 5u);
  EXPECT_EQ(space.biased_sample(7).size(), 7u);
  EXPECT_EQ(space.biased_sample(9).size(), 9u);
}

TEST(ConfigSpace, BiasedSamplePivots) {
  ConfigSpace space{48};
  const auto pivots = space.biased_sample(3);
  EXPECT_EQ(pivots[0], (Config{1, 1}));
  EXPECT_EQ(pivots[1], (Config{48, 1}));
  EXPECT_EQ(pivots[2], (Config{1, 48}));
}

TEST(ConfigSpace, BiasedSampleFootnoteSubsets) {
  // The paper's footnote: 5 adds (n-1,1),(1,n-1); 7 adds (2,1),(1,2).
  ConfigSpace space{48};
  const auto five = space.biased_sample(5);
  EXPECT_EQ(five[3], (Config{47, 1}));
  EXPECT_EQ(five[4], (Config{1, 47}));
  const auto seven = space.biased_sample(7);
  EXPECT_EQ(seven[5], (Config{2, 1}));
  EXPECT_EQ(seven[6], (Config{1, 2}));
}

TEST(ConfigSpace, BiasedSampleNinePointsOnBoundary) {
  ConfigSpace space{48};
  for (const Config& cfg : space.biased_sample(9)) {
    EXPECT_TRUE(space.valid(cfg));
    // Every biased point lies on a boundary of S: an axis or the hyperbola.
    const bool on_axis = cfg.t == 1 || cfg.c == 1;
    const bool near_hyperbola = cfg.t * cfg.c >= 47;
    EXPECT_TRUE(on_axis || near_hyperbola) << cfg.to_string();
  }
}

TEST(ConfigSpace, BiasedSampleDedupsOnTinySpaces) {
  ConfigSpace space{2};  // (1,1),(1,2),(2,1)
  const auto pts = space.biased_sample(9);
  std::set<std::pair<int, int>> seen;
  for (const Config& cfg : pts) {
    EXPECT_TRUE(space.valid(cfg));
    EXPECT_TRUE(seen.emplace(cfg.t, cfg.c).second) << "duplicate " << cfg.to_string();
  }
}

TEST(Config, ToStringAndEquality) {
  EXPECT_EQ((Config{20, 2}).to_string(), "(20,2)");
  EXPECT_EQ((Config{1, 1}), (Config{1, 1}));
  EXPECT_NE((Config{1, 2}), (Config{2, 1}));
  EXPECT_NE(ConfigHash{}(Config{1, 2}), ConfigHash{}(Config{2, 1}));
}

// Property: |S| equals sum over t of floor(n/t).
class SpaceSize : public ::testing::TestWithParam<int> {};

TEST_P(SpaceSize, MatchesClosedForm) {
  const int n = GetParam();
  ConfigSpace space{n};
  std::size_t expected = 0;
  for (int t = 1; t <= n; ++t) expected += static_cast<std::size_t>(n / t);
  EXPECT_EQ(space.size(), expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpaceSize, ::testing::Values(1, 2, 3, 8, 16, 48, 64));

}  // namespace
}  // namespace autopn::opt
