// Router end-to-end tests over loopback: real clients talking the wire
// protocol to a Router fronting real shard NetServers. Covers tenant
// affinity through the ring, the router ledger (dispatched == forwarded +
// shed_local, forwarded == returned) composed with the server's response
// ledger, router-origin sheds for unreachable/dying backends, drop-free
// drain-then-cut tenant migration under load, per-shard KPI aggregation
// through kStatsRequest, and the router failpoints.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "router/ring.hpp"
#include "router/router.hpp"
#include "serve/engine.hpp"
#include "stm/stm.hpp"
#include "util/clock.hpp"
#include "util/failpoint.hpp"

namespace autopn::router {
namespace {

using namespace std::chrono_literals;

stm::StmConfig small_stm() {
  stm::StmConfig cfg;
  cfg.max_cores = 4;
  cfg.pool_threads = 2;
  cfg.initial_top = 2;
  cfg.initial_children = 1;
  return cfg;
}

/// One real backend shard: engine + NetServer on a kernel-assigned port.
struct Shard {
  explicit Shard(net::NetServer::HandlerTable handlers = {})
      : stm(small_stm()),
        engine(stm, [](util::Rng&) {}, clock, {}),
        server(engine, std::move(handlers)) {}

  util::WallClock clock;
  stm::Stm stm;
  serve::ServeEngine engine;
  net::NetServer server;

  [[nodiscard]] ShardAddress address(std::uint32_t id) const {
    return ShardAddress{id, "127.0.0.1", server.port()};
  }
};

RouterConfig fast_config() {
  RouterConfig cfg;
  cfg.backoff.attempt_timeout_seconds = 0.25;
  cfg.backoff.initial_backoff_seconds = 0.02;
  cfg.backoff.max_backoff_seconds = 0.1;
  cfg.stats_poll_seconds = 0.05;
  cfg.rebalance_enabled = false;  // tests drive migrations explicitly
  cfg.migration_timeout_seconds = 0.5;
  return cfg;
}

/// First tenant id the ring places on `shard` (the router's own hashing).
std::uint16_t tenant_on(std::uint32_t shard, std::uint32_t shard_count) {
  HashRing ring;
  for (std::uint32_t s = 0; s < shard_count; ++s) ring.add_shard(s);
  for (std::uint16_t t = 0;; ++t) {
    if (ring.owner_of_tenant(t) == shard) return t;
  }
}

void expect_router_ledger(const RouterReport& r) {
  EXPECT_EQ(r.dispatched, r.forwarded + r.shed_local);
  EXPECT_EQ(r.forwarded, r.returned);
  EXPECT_EQ(r.late_responses, 0u);
}

void expect_server_ledger(const net::NetServerReport& r) {
  EXPECT_EQ(r.requests_decoded, r.responses_enqueued);
  EXPECT_EQ(r.responses_enqueued, r.responses_written + r.responses_dropped);
}

TEST(RouterProxy, RoundTripsPinTenantsToTheirRingShard) {
  Shard shard0;
  Shard shard1;
  Router router({shard0.address(0), shard1.address(1)}, fast_config());
  const std::uint16_t tenant_a = tenant_on(0, 2);
  const std::uint16_t tenant_b = tenant_on(1, 2);

  auto client = net::Client::connect("127.0.0.1", router.port());
  for (int i = 0; i < 8; ++i) {
    const auto ra = client.call(/*handler_id=*/0, tenant_a);
    ASSERT_TRUE(ra.has_value());
    EXPECT_EQ(ra->status, net::Status::kOk);
    EXPECT_EQ(ra->shed_origin, net::ShedOrigin::kShard);
    const auto rb = client.call(/*handler_id=*/0, tenant_b);
    ASSERT_TRUE(rb.has_value());
    EXPECT_EQ(rb->status, net::Status::kOk);
  }
  // Affinity: all of tenant_a's traffic decoded by shard 0, tenant_b's by
  // shard 1 — and none crossed over.
  EXPECT_EQ(shard0.server.report().requests_decoded, 8u);
  EXPECT_EQ(shard1.server.report().requests_decoded, 8u);

  client.close();
  router.shutdown();
  const RouterReport report = router.report();
  EXPECT_EQ(report.dispatched, 16u);
  EXPECT_EQ(report.forwarded, 16u);
  EXPECT_EQ(report.shed_local, 0u);
  expect_router_ledger(report);
  expect_server_ledger(router.server_report());
}

TEST(RouterProxy, UnreachableBackendShedsWithRouterOrigin) {
  // Reserve a port that refuses connections: bound but never listening.
  const int refusing_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(refusing_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(refusing_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(refusing_fd, reinterpret_cast<sockaddr*>(&addr),
                          &len),
            0);

  Router router({ShardAddress{0, "127.0.0.1", ntohs(addr.sin_port)}},
                fast_config());
  auto client = net::Client::connect("127.0.0.1", router.port());
  for (int i = 0; i < 4; ++i) {
    const auto response = client.call(/*handler_id=*/0, /*tenant_id=*/7);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, net::Status::kShed);
    EXPECT_EQ(response->shed_origin, net::ShedOrigin::kRouter);
    EXPECT_GT(response->retry_after_us, 0u);
  }
  const auto health = router.shard_health();
  ASSERT_EQ(health.size(), 1u);
  EXPECT_FALSE(health[0].second);

  client.close();
  router.shutdown();
  const RouterReport report = router.report();
  EXPECT_EQ(report.forwarded, 0u);
  EXPECT_EQ(report.shed_local, 4u);
  expect_router_ledger(report);
  ::close(refusing_fd);
}

TEST(RouterProxy, ShardDeathSynthesizesRouterOriginSheds) {
  Shard shard0;
  Router router({shard0.address(0)}, fast_config());
  auto client = net::Client::connect("127.0.0.1", router.port());
  const auto warm = client.call(/*handler_id=*/0, /*tenant_id=*/3);
  ASSERT_TRUE(warm.has_value());
  EXPECT_EQ(warm->status, net::Status::kOk);

  shard0.server.shutdown();
  // The link notices the close either at forward time (local shed) or on
  // its receiver (synthesized shed for the in-flight token) — both reach
  // the client as a router-origin kShed within a few attempts.
  bool saw_router_shed = false;
  for (int i = 0; i < 50 && !saw_router_shed; ++i) {
    const auto response =
        client.call(/*handler_id=*/0, /*tenant_id=*/3, /*deadline_us=*/0,
                    /*timeout_seconds=*/2.0);
    ASSERT_TRUE(response.has_value());
    saw_router_shed = response->status == net::Status::kShed &&
                      response->shed_origin == net::ShedOrigin::kRouter;
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_TRUE(saw_router_shed);

  client.close();
  router.shutdown();
  expect_router_ledger(router.report());
  expect_server_ledger(router.server_report());
}

TEST(RouterProxy, MigrationUnderLoadDropsNothing) {
  // 2ms handlers keep requests in flight so the migration exercises the
  // drain-then-cut path (hold, wait for zero in-flight, flip, replay).
  net::NetServer::HandlerTable slow = {
      [](util::Rng&) { std::this_thread::sleep_for(2ms); }};
  Shard shard0(slow);
  Shard shard1(slow);
  Router router({shard0.address(0), shard1.address(1)}, fast_config());
  const std::uint16_t tenant = tenant_on(0, 2);
  ASSERT_EQ(router.shard_of(tenant), 0u);

  constexpr int kLoaders = 2;
  constexpr int kCallsPerLoader = 100;
  std::atomic<int> answered{0};
  std::atomic<int> ok{0};
  std::vector<std::thread> loaders;
  loaders.reserve(kLoaders);
  for (int l = 0; l < kLoaders; ++l) {
    loaders.emplace_back([&] {
      auto client = net::Client::connect("127.0.0.1", router.port());
      for (int i = 0; i < kCallsPerLoader; ++i) {
        const auto response =
            client.call(/*handler_id=*/0, tenant, /*deadline_us=*/0,
                        /*timeout_seconds=*/5.0);
        if (response.has_value()) {
          answered.fetch_add(1, std::memory_order_relaxed);
          if (response->status == net::Status::kOk) {
            ok.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  std::this_thread::sleep_for(50ms);  // mid-stream, requests in flight
  router.migrate_tenant(tenant, 1);
  for (std::thread& t : loaders) t.join();

  // Zero drops: every call was answered, and none was shed — migration
  // holds frames, it never refuses them (the held queue stayed bounded).
  EXPECT_EQ(answered.load(), kLoaders * kCallsPerLoader);
  EXPECT_EQ(ok.load(), kLoaders * kCallsPerLoader);
  EXPECT_EQ(router.shard_of(tenant), 1u);
  EXPECT_GT(shard1.server.report().requests_decoded, 0u);

  router.shutdown();
  const RouterReport report = router.report();
  EXPECT_EQ(report.migrations_started, 1u);
  EXPECT_EQ(report.migrations_completed, 1u);
  EXPECT_EQ(report.shed_local, 0u);
  expect_router_ledger(report);
  expect_server_ledger(router.server_report());
}

TEST(RouterProxy, StatsRequestAggregatesShardKpis) {
  Shard shard0;
  Shard shard1;
  Router router({shard0.address(0), shard1.address(1)}, fast_config());
  const std::uint16_t tenant_a = tenant_on(0, 2);
  const std::uint16_t tenant_b = tenant_on(1, 2);

  auto client = net::Client::connect("127.0.0.1", router.port());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(client.call(0, tenant_a).has_value());
    ASSERT_TRUE(client.call(0, tenant_b).has_value());
  }
  std::this_thread::sleep_for(300ms);  // several 50ms poll cycles

  ASSERT_TRUE(client.send_stats_request());
  const auto stats = client.poll_stats(/*timeout_seconds=*/2.0);
  ASSERT_TRUE(stats.has_value());
  EXPECT_GE(stats->offered, 16u);    // both shards' counters, summed
  EXPECT_GE(stats->completed, 16u);
  EXPECT_FALSE(stats->tenants.empty());

  client.close();
  router.shutdown();
}

TEST(RouterProxy, ShutdownUnderOpenLoadKeepsLedgersExact) {
  net::NetServer::HandlerTable slow = {
      [](util::Rng&) { std::this_thread::sleep_for(1ms); }};
  Shard shard0(slow);
  Shard shard1(slow);
  Router router({shard0.address(0), shard1.address(1)}, fast_config());

  std::atomic<bool> stop{false};
  std::thread loader([&] {
    auto client = net::Client::connect("127.0.0.1", router.port());
    std::uint16_t tenant = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const auto response = client.call(/*handler_id=*/0, ++tenant,
                                        /*deadline_us=*/0,
                                        /*timeout_seconds=*/1.0);
      if (!response.has_value()) break;  // shutdown reached the socket
    }
  });
  std::this_thread::sleep_for(100ms);
  router.shutdown();  // while requests are in flight
  stop.store(true, std::memory_order_relaxed);
  loader.join();

  expect_router_ledger(router.report());
  expect_server_ledger(router.server_report());
}

TEST(RouterProxy, ForwardFailpointShedsLocally) {
  if (!util::FailpointRegistry::compiled_in()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  Shard shard0;
  Router router({shard0.address(0)}, fast_config());
  auto client = net::Client::connect("127.0.0.1", router.port());

  util::FailpointRegistry::instance().arm_from_string(
      "router.forward=error(n=1)");
  const auto shed = client.call(/*handler_id=*/0, /*tenant_id=*/5);
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->status, net::Status::kShed);
  EXPECT_EQ(shed->shed_origin, net::ShedOrigin::kRouter);

  const auto ok = client.call(/*handler_id=*/0, /*tenant_id=*/5);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->status, net::Status::kOk);

  util::FailpointRegistry::instance().disarm_all();
  client.close();
  router.shutdown();
  const RouterReport report = router.report();
  EXPECT_EQ(report.shed_local, 1u);
  expect_router_ledger(report);
}

TEST(RouterProxy, BackendDownFailpointForcesLocalShed) {
  if (!util::FailpointRegistry::compiled_in()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  Shard shard0;
  Router router({shard0.address(0)}, fast_config());
  auto client = net::Client::connect("127.0.0.1", router.port());

  util::FailpointRegistry::instance().arm_from_string(
      "router.backend_down=error(n=1)");
  const auto shed = client.call(/*handler_id=*/0, /*tenant_id=*/5);
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->status, net::Status::kShed);
  EXPECT_EQ(shed->shed_origin, net::ShedOrigin::kRouter);

  util::FailpointRegistry::instance().disarm_all();
  client.close();
  router.shutdown();
  expect_router_ledger(router.report());
}

}  // namespace
}  // namespace autopn::router
